"""Cache storage seam tests: backend conformance, sharing, crash safety.

The same conformance suite runs against every registered backend —
that is the seam's contract: ``ResultCache`` behaves identically no
matter where the bytes live.  On top of that, the on-disk flavours get
the properties shared stores actually depend on: concurrent writers
racing one content hash never corrupt it, and torn files read as
misses, never exceptions.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.runner import (
    DEFAULT_CACHE_BACKEND,
    ResultCache,
    TaskSpec,
    cache_backend_info,
    create_cache_backend,
    register_cache_backend,
    registered_cache_backends,
)
from repro.runner.backends import CacheBackend

BACKENDS = ("directory", "sharded", "memory")


def _spec(value: int) -> TaskSpec:
    return TaskSpec("_bk_test", {"value": value})


class TestRegistry:
    def test_shipped_roster(self):
        assert set(BACKENDS) <= set(registered_cache_backends())
        assert DEFAULT_CACHE_BACKEND == "directory"

    def test_unknown_backend_fails_with_roster(self):
        with pytest.raises(ValueError, match="registered: .*sharded"):
            cache_backend_info("nope")

    def test_env_var_sets_process_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sharded")
        cache = ResultCache(tmp_path)
        assert cache.describe().startswith("sharded")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_cache_backend("directory")(object)

    def test_instances_satisfy_protocol(self, tmp_path):
        for name in BACKENDS:
            assert isinstance(
                create_cache_backend(name, root=tmp_path / name), CacheBackend
            )


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendConformance:
    """One behaviour, three stores."""

    def _cache(self, tmp_path, backend: str) -> ResultCache:
        return ResultCache(tmp_path / "store", backend=backend)

    def test_round_trip_and_accounting(self, tmp_path, backend):
        cache = self._cache(tmp_path, backend)
        spec = _spec(1)
        assert cache.load(spec) is None
        cache.store(spec, {"doubled": 2}, elapsed_seconds=0.25)
        entry = cache.load(spec)
        assert entry["artifact"] == {"doubled": 2}
        assert entry["elapsed_seconds"] == 0.25
        assert cache.hits == 1 and cache.misses == 1

    def test_clear_and_counts_by_kind(self, tmp_path, backend):
        cache = self._cache(tmp_path, backend)
        cache.store(_spec(1), {}, 0.0)
        cache.store(_spec(2), {}, 0.0)
        cache.store(TaskSpec("_bk_other", {"v": 1}), {}, 0.0)
        assert cache.kinds() == ["_bk_other", "_bk_test"]
        assert cache.entry_count() == 3
        assert cache.entry_count(kind="_bk_test") == 2
        assert cache.clear(kind="_bk_test") == 2
        assert cache.entry_count() == 1
        assert cache.clear() == 1
        assert cache.kinds() == []

    def test_two_instances_share_one_store(self, tmp_path, backend):
        """Two ResultCache objects over one backend = two daemons."""
        if backend == "memory":
            shared = create_cache_backend("memory")
            writer = ResultCache(backend=shared)
            reader = ResultCache(backend=shared)
        else:
            writer = self._cache(tmp_path, backend)
            reader = self._cache(tmp_path, backend)
        spec = _spec(7)
        writer.store(spec, {"doubled": 14}, elapsed_seconds=0.1)
        entry = reader.load(spec)
        assert entry is not None and entry["artifact"] == {"doubled": 14}

    def test_concurrent_writers_same_key_never_corrupt(self, tmp_path, backend):
        """N threads race store+load on one content hash.

        The contract under contention: every load returns ``None`` or a
        complete, valid entry — never a torn one — and once the dust
        settles the entry is fully readable.
        """
        if backend == "memory":
            shared = create_cache_backend("memory")
            caches = [ResultCache(backend=shared) for _ in range(4)]
        else:
            caches = [self._cache(tmp_path, backend) for _ in range(4)]
        spec = _spec(99)
        start = threading.Barrier(len(caches))
        failures: list[str] = []

        def hammer(cache: ResultCache) -> None:
            start.wait(timeout=30)
            for round_no in range(25):
                cache.store(spec, {"round": round_no}, elapsed_seconds=0.0)
                entry = cache.load(spec)
                if entry is not None and "artifact" not in entry:
                    failures.append(f"torn entry observed: {entry!r}")

        threads = [
            threading.Thread(target=hammer, args=(cache,)) for cache in caches
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures
        final = caches[0].load(spec)
        assert final is not None and "round" in final["artifact"]


class TestOnDiskLayouts:
    def test_directory_layout_is_flat(self, tmp_path):
        cache = ResultCache(tmp_path, backend="directory")
        spec = _spec(3)
        path = cache.store(spec, {"doubled": 6}, elapsed_seconds=0.0)
        assert path == tmp_path / "_bk_test" / f"{spec.cache_key}.json"
        assert path.is_file()

    def test_sharded_layout_fans_out_by_hash_prefix(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sharded")
        spec = _spec(3)
        path = cache.store(spec, {"doubled": 6}, elapsed_seconds=0.0)
        key = spec.cache_key
        assert path == tmp_path / "_bk_test" / key[:2] / f"{key}.json"
        assert path.is_file()
        assert cache.load(spec)["artifact"] == {"doubled": 6}

    @pytest.mark.parametrize("backend", ["directory", "sharded"])
    def test_torn_file_is_a_miss_then_overwritten(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        spec = _spec(5)
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text('{"version": 1, "artifact": {"dou')  # torn write
        assert cache.load(spec) is None  # miss, not an exception
        cache.store(spec, {"doubled": 10}, elapsed_seconds=0.0)
        assert cache.load(spec)["artifact"] == {"doubled": 10}

    @pytest.mark.parametrize("backend", ["directory", "sharded"])
    def test_wrong_format_version_is_a_miss(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        spec = _spec(6)
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"version": 999, "artifact": {}}))
        assert cache.load(spec) is None

    def test_no_temp_droppings_after_stores(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sharded")
        for value in range(5):
            cache.store(_spec(value), {"doubled": value * 2}, 0.0)
        leftovers = [
            p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")
        ]
        assert leftovers == []


class TestCacheInfoParity:
    def test_cache_info_output_identical_across_disk_backends(
        self, tmp_path, capsys
    ):
        """`repro cache info` is layout-agnostic: same contents, same text."""
        outputs = {}
        for backend in ("directory", "sharded"):
            root = tmp_path / backend
            cache = ResultCache(root, backend=backend)
            for value in range(3):
                cache.store(_spec(value), {"doubled": value * 2}, 0.0)
            cache.store(TaskSpec("_bk_other", {"v": 1}), {}, 0.0)
            main(
                [
                    "cache",
                    "info",
                    "--cache-dir",
                    str(root),
                    "--cache-backend",
                    backend,
                ]
            )
            out = capsys.readouterr().out
            # The header names the root (which differs by construction);
            # everything below it — kinds, counts, totals — must match.
            outputs[backend] = out.splitlines()[1:]
            assert str(root) in out.splitlines()[0]
        assert outputs["directory"] == outputs["sharded"]

    def test_cache_info_unknown_backend_exits_with_roster(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "cache",
                    "info",
                    "--cache-dir",
                    str(tmp_path),
                    "--cache-backend",
                    "bogus",
                ]
            )
