"""Oracle tests."""

from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import evaluate
from repro.oracle.oracle import Oracle


def test_query_matches_simulation(small_circuit):
    oracle = Oracle(small_circuit)
    bits = {net: (i % 2) for i, net in enumerate(small_circuit.inputs)}
    assert oracle.query(bits) == evaluate(small_circuit, bits)


def test_query_counting(small_circuit):
    oracle = Oracle(small_circuit)
    assert oracle.query_count == 0
    bits = {net: 0 for net in small_circuit.inputs}
    oracle.query(bits)
    oracle.query(bits)
    assert oracle.query_count == 2


def test_query_int_packing():
    n = random_netlist(4, 15, seed=3)
    oracle = Oracle(n)
    pattern = 0b1010
    packed = oracle.query_int(pattern)
    bits = {net: (pattern >> j) & 1 for j, net in enumerate(n.inputs)}
    expected = evaluate(n, bits)
    for j, net in enumerate(n.outputs):
        assert ((packed >> j) & 1) == expected[net]


def test_interface_exposure(small_circuit):
    oracle = Oracle(small_circuit)
    assert oracle.input_names == small_circuit.inputs
    assert oracle.output_names == small_circuit.outputs


def test_query_batch_matches_per_pattern_queries(small_circuit):
    batched = Oracle(small_circuit)
    serial = Oracle(small_circuit)
    patterns = [0, 1, 0b101010, (1 << len(small_circuit.inputs)) - 1, 7]
    assert batched.query_batch(patterns) == [
        serial.query_int(p) for p in patterns
    ]


def test_query_batch_counts_one_query_per_pattern(small_circuit):
    """Batching buys speed, not a lower oracle count: W patterns in one
    sweep are still W queries."""
    oracle = Oracle(small_circuit)
    oracle.query_batch([0, 1, 2, 3])
    assert oracle.query_count == 4
    oracle.query_batch([])
    assert oracle.query_count == 4
    oracle.query_int(5)
    assert oracle.query_count == 5


def test_query_vector_matches_simulation(small_circuit):
    from repro.circuit.simulator import random_patterns, simulate

    width = 16
    stimuli = dict(
        zip(
            small_circuit.inputs,
            random_patterns(len(small_circuit.inputs), width, seed=7),
        )
    )
    oracle = Oracle(small_circuit)
    response = oracle.query_vector(stimuli, width)
    values = simulate(small_circuit, stimuli, width=width)
    assert response == {net: values[net] for net in small_circuit.outputs}
    assert oracle.query_count == width

