"""Oracle tests."""

from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import evaluate
from repro.oracle.oracle import Oracle


def test_query_matches_simulation(small_circuit):
    oracle = Oracle(small_circuit)
    bits = {net: (i % 2) for i, net in enumerate(small_circuit.inputs)}
    assert oracle.query(bits) == evaluate(small_circuit, bits)


def test_query_counting(small_circuit):
    oracle = Oracle(small_circuit)
    assert oracle.query_count == 0
    bits = {net: 0 for net in small_circuit.inputs}
    oracle.query(bits)
    oracle.query(bits)
    assert oracle.query_count == 2


def test_query_int_packing():
    n = random_netlist(4, 15, seed=3)
    oracle = Oracle(n)
    pattern = 0b1010
    packed = oracle.query_int(pattern)
    bits = {net: (pattern >> j) & 1 for j, net in enumerate(n.inputs)}
    expected = evaluate(n, bits)
    for j, net in enumerate(n.outputs):
        assert ((packed >> j) & 1) == expected[net]


def test_interface_exposure(small_circuit):
    oracle = Oracle(small_circuit)
    assert oracle.input_names == small_circuit.inputs
    assert oracle.output_names == small_circuit.outputs
