"""Tier-1 gate for the runnable docstring examples.

CI also runs ``pytest --doctest-modules`` over these modules directly;
this test keeps the same examples from rotting on machines that only
run the plain tier-1 suite.
"""

import doctest

import repro.circuit.compiled
import repro.circuit.opt
import repro.core.sharded
import repro.metrics.engine
import repro.oracle.oracle
import repro.rng

_DOCTEST_MODULES = (
    repro.circuit.compiled,
    repro.circuit.opt,
    repro.oracle.oracle,
    repro.core.sharded,
    repro.metrics.engine,
    repro.rng,
)


def test_doctests_pass():
    total_attempted = 0
    for module in _DOCTEST_MODULES:
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0, f"doctest failures in {module.__name__}"
        total_attempted += result.attempted
    # Guard against the examples being silently dropped.
    assert total_attempted >= 8
