"""AppSAT approximate-attack tests."""

from repro.attacks.appsat import appsat_attack
from repro.attacks.sat_attack import sat_attack
from repro.circuit.random_circuits import random_netlist
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock
from repro.oracle.oracle import Oracle


class TestAppSat:
    def test_exact_on_easy_lock(self):
        """XOR locking converges in a handful of DIPs -> exact result."""
        original = random_netlist(7, 45, seed=81)
        locked = xor_lock(original, 5, seed=1)
        result = appsat_attack(locked, Oracle(original), dips_per_round=16)
        assert result.status == "exact"
        assert locked.verify_key(original, result.key).equivalent
        assert result.estimated_error_rate == 0.0

    def test_settles_on_sarlock(self):
        """SARLock needs 2^|K| DIPs exactly, but any key surviving a few
        DIPs already has point-function error only -> AppSAT settles
        long before the exact attack would finish."""
        original = random_netlist(10, 60, seed=82)
        locked = sarlock_lock(original, 10, seed=2)
        result = appsat_attack(
            locked,
            Oracle(original),
            dips_per_round=4,
            queries_per_checkpoint=32,
            error_threshold=0.05,
            settle_rounds=2,
            seed=3,
        )
        assert result.status == "settled"
        # Far fewer DIPs than the exact attack's 2^10 - 1.
        assert result.num_dips < 100
        assert result.estimated_error_rate <= 0.05
        assert result.checkpoints  # evidence recorded

    def test_settled_key_is_approximately_correct(self):
        original = random_netlist(8, 50, seed=83)
        locked = sarlock_lock(original, 8, seed=1)
        result = appsat_attack(
            locked,
            Oracle(original),
            dips_per_round=4,
            queries_per_checkpoint=64,
            error_threshold=0.05,
            seed=5,
        )
        assert result.key is not None
        from repro.locking.metrics import error_rate

        # Point-function corruption only: at most a few patterns err.
        rate = error_rate(locked, original, result.key, num_samples=2048)
        assert rate <= 0.05

    def test_timeout_status(self):
        # A zero budget trips the timeout deterministically; any small
        # positive budget is flaky now that the batched checkpoint can
        # settle within milliseconds.
        original = random_netlist(8, 50, seed=84)
        locked = sarlock_lock(original, 8, seed=1)
        result = appsat_attack(
            locked, Oracle(original), dips_per_round=2, time_limit=0.0
        )
        assert result.status == "timeout"
        assert result.key is None

    def test_comparison_with_exact_attack_cost(self):
        """The motivating comparison: AppSAT does fewer DIPs than the
        exact attack on a point-function scheme."""
        original = random_netlist(9, 55, seed=85)
        locked = sarlock_lock(original, 9, seed=4)
        exact = sat_attack(locked, Oracle(original))
        approx = appsat_attack(
            locked,
            Oracle(original),
            dips_per_round=4,
            queries_per_checkpoint=32,
            error_threshold=0.05,
            seed=6,
        )
        assert exact.num_dips == 2**9 - 1
        assert approx.num_dips < exact.num_dips
