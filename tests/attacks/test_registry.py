"""Registry behavior: attacks, schemes, and the unified outcome."""

import pytest

from repro.attacks.brute_force import brute_force_attack, brute_force_keys
from repro.attacks.appsat import appsat_attack
from repro.attacks.registry import (
    SUCCESS_STATUSES,
    attack_info,
    register_attack,
    registered_attacks,
    run_attack,
)
from repro.circuit.random_circuits import random_netlist
from repro.locking import (
    LockingError,
    lock_circuit,
    register_scheme,
    registered_schemes,
    scheme_info,
)
from repro.oracle.oracle import Oracle


@pytest.fixture
def setup():
    original = random_netlist(6, 30, seed=11)
    locked = lock_circuit("sarlock", original, key_size=3, seed=2)
    return original, locked


class TestAttackRegistry:
    def test_builtin_roster(self):
        names = registered_attacks()
        for name in ("sat", "appsat", "brute_force"):
            assert name in names

    def test_only_sat_is_shard_capable(self):
        assert attack_info("sat").supports_shared_encoding
        assert not attack_info("appsat").supports_shared_encoding
        assert not attack_info("brute_force").supports_shared_encoding

    def test_duplicate_name_rejected(self):
        def imposter(locked, oracle, **kwargs):  # pragma: no cover
            raise AssertionError("never called")

        with pytest.raises(ValueError, match="already registered"):
            register_attack("sat")(imposter)

    def test_reregistering_same_function_is_idempotent(self):
        info = attack_info("sat")
        register_attack("sat", shard_fn=info.shard_fn)(info.fn)
        assert attack_info("sat").fn is info.fn

    def test_unknown_name_lists_roster(self, setup):
        original, locked = setup
        with pytest.raises(ValueError) as err:
            run_attack("nope", locked, Oracle(original))
        message = str(err.value)
        assert "nope" in message
        for name in ("sat", "appsat", "brute_force"):
            assert name in message

    def test_sat_outcome_surface(self, setup):
        original, locked = setup
        outcome = run_attack("sat", locked, Oracle(original))
        assert outcome.attack == "sat"
        assert outcome.succeeded
        assert outcome.status in SUCCESS_STATUSES
        assert outcome.key_int in brute_force_keys(locked, Oracle(original))
        assert outcome.num_dips > 0
        assert outcome.oracle_queries == outcome.num_dips
        assert outcome.solver_stats.get("decisions", 0) >= 0
        assert outcome.key_order == list(locked.key_inputs)

    def test_brute_force_outcome_enumerates(self, setup):
        original, locked = setup
        outcome = run_attack("brute_force", locked, Oracle(original))
        assert outcome.attack == "brute_force"
        assert outcome.succeeded
        assert outcome.all_keys == brute_force_keys(locked, Oracle(original))
        assert outcome.key_int == outcome.all_keys[0]
        assert outcome.num_dips == 0

    def test_appsat_outcome_and_pin(self, setup):
        original, locked = setup
        pin = {original.inputs[0]: True}
        outcome = run_attack(
            "appsat",
            locked,
            Oracle(original),
            pin=pin,
            dips_per_round=32,
            error_threshold=0.0,
            settle_rounds=99,
        )
        assert outcome.attack == "appsat"
        assert outcome.succeeded
        assert outcome.pinned == pin
        assert outcome.detail["native_status"] in ("exact", "settled")
        good = brute_force_keys(locked, Oracle(original), pin=pin)
        assert outcome.key_int in good

    def test_appsat_oracle_queries_is_a_true_delta(self, setup):
        """The outcome must report queries *issued* (the budget-replay
        implementation re-queries earlier DIPs each round), matching
        the shared-oracle counter delta like every other attack."""
        original, locked = setup
        oracle = Oracle(original)
        before = oracle.query_count
        outcome = run_attack(
            "appsat",
            locked,
            oracle,
            dips_per_round=4,
            queries_per_checkpoint=16,
            error_threshold=0.5,
        )
        assert outcome.oracle_queries == oracle.query_count - before
        # The algorithmic minimum stays available for comparison.
        assert outcome.oracle_queries >= (
            outcome.num_dips + outcome.detail["random_queries"]
        )


class TestSchemeRegistry:
    def test_builtin_roster(self):
        names = registered_schemes()
        for name in ("xor", "sarlock", "antisat", "lut", "entangled"):
            assert name in names

    def test_duplicate_name_rejected(self):
        def imposter(netlist, **kwargs):  # pragma: no cover
            raise AssertionError("never called")

        with pytest.raises(ValueError, match="already registered"):
            register_scheme("sarlock")(imposter)

    def test_unknown_name_lists_roster(self):
        original = random_netlist(5, 20, seed=1)
        with pytest.raises(ValueError) as err:
            lock_circuit("nope", original)
        message = str(err.value)
        assert "nope" in message
        for name in ("sarlock", "xor", "lut", "antisat", "entangled"):
            assert name in message

    def test_descriptions_populated(self):
        for name in registered_schemes():
            assert scheme_info(name).description

    def test_antisat_key_size_mapping(self):
        original = random_netlist(6, 30, seed=3)
        locked = lock_circuit("antisat", original, key_size=4, seed=0)
        assert locked.scheme == "antisat"
        assert locked.key_size == 4
        with pytest.raises(LockingError, match="even"):
            lock_circuit("antisat", original, key_size=3)

    def test_lut_spec_by_name_and_dict(self):
        original = random_netlist(8, 60, seed=31)
        by_name = lock_circuit("lut", original, spec="tiny", seed=2)
        by_dict = lock_circuit(
            "lut",
            original,
            spec={
                "stage1_width": 3,
                "num_stage1": 2,
                "stage2_width": 3,
                "shared_padding": True,
            },
            seed=2,
        )
        assert by_name.key_size == by_dict.key_size == 24
        assert by_name.correct_key == by_dict.correct_key


class TestBruteForceResult:
    def test_dataclass_surface(self, setup):
        original, locked = setup
        pin = {original.inputs[1]: False}
        result = brute_force_attack(locked, Oracle(original), pin=pin)
        assert result.keys == brute_force_keys(locked, Oracle(original), pin=pin)
        assert result.key_int == result.keys[0]
        assert result.num_keys == len(result.keys)
        assert result.elapsed_seconds > 0
        # One counted query per input pattern consistent with the pin.
        assert result.oracle_queries == 1 << (len(original.inputs) - 1)
        assert result.key_order == list(locked.key_inputs)
        assert result.pinned == pin

    def test_compat_wrapper_returns_bare_list(self, setup):
        original, locked = setup
        keys = brute_force_keys(locked, Oracle(original))
        assert isinstance(keys, list)
        assert locked.correct_key_int in keys


class TestAppSatBudget:
    def test_max_dips_cap_reports_dip_limit(self, setup):
        original, locked = setup
        result = appsat_attack(
            locked,
            Oracle(original),
            dips_per_round=1,
            queries_per_checkpoint=4,
            error_threshold=-1.0,  # never settle
            settle_rounds=2,
            max_dips=2,
        )
        assert result.status == "dip_limit"
        assert result.num_dips <= 2

    def test_default_behavior_unchanged_without_budget(self, setup):
        original, locked = setup
        capped = appsat_attack(locked, Oracle(original), dips_per_round=32)
        assert capped.status in ("exact", "settled")
