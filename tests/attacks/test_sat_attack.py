"""SAT-attack tests: recovery, pinning, budgets, oracle accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.attacks.brute_force import brute_force_keys
from repro.attacks.sat_attack import sat_attack, verify_key_against_oracle
from repro.circuit.random_circuits import random_netlist
from repro.locking.antisat import antisat_lock
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock
from repro.oracle.oracle import Oracle


class TestRecovery:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_xor_lock_recovered(self, seed):
        original = random_netlist(7, 50, seed=seed)
        locked = xor_lock(original, 6, seed=seed)
        result = sat_attack(locked, Oracle(original))
        assert result.succeeded
        assert locked.verify_key(original, result.key).equivalent

    def test_sarlock_recovered_with_exact_dip_count(self):
        original = random_netlist(8, 50, seed=7)
        locked = sarlock_lock(original, 5, seed=1)
        result = sat_attack(locked, Oracle(original))
        assert result.succeeded
        assert result.key_int == locked.correct_key_int
        assert result.num_dips == 2**5 - 1  # one DIP per wrong key

    def test_antisat_recovered(self):
        original = random_netlist(7, 40, seed=9)
        locked = antisat_lock(original, 4, seed=2)
        result = sat_attack(locked, Oracle(original))
        assert result.succeeded
        assert locked.verify_key(original, result.key).equivalent

    def test_lut_lock_recovered(self):
        original = random_netlist(8, 60, seed=11)
        locked = lut_lock(original, LutModuleSpec.tiny(), seed=3)
        result = sat_attack(locked, Oracle(original))
        assert result.succeeded
        assert locked.verify_key(original, result.key).equivalent

    def test_unused_key_bits_default(self):
        """Keys not influencing any output are returned arbitrarily but
        the attack still succeeds."""
        original = random_netlist(6, 30, seed=5)
        locked = xor_lock(original, 3, seed=5)
        # Add a dangling key input.
        locked.netlist.add_input("keyinput_unused")
        locked.key_inputs.append("keyinput_unused")
        locked.correct_key = tuple(locked.correct_key) + (0,)
        result = sat_attack(locked, Oracle(original))
        assert result.succeeded


class TestBenchCircuitParity:
    """Refactor parity anchors on a bench circuit.

    The recovered key, the DIP count and the oracle accounting are the
    observable contract of the attack; the SARLock DIP count is exactly
    ``2^|K| - 1`` regardless of how the miter is encoded, so any drift
    introduced by the compiled-IR path shows up here immediately.
    """

    def test_bench_circuit_key_and_dip_count(self):
        from repro.bench_circuits.iscas85 import iscas85_like

        original = iscas85_like("c432", 0.25)
        locked = sarlock_lock(original, 5, seed=4)
        oracle = Oracle(original)
        result = sat_attack(locked, oracle)
        assert result.succeeded
        assert result.key_int == locked.correct_key_int
        assert result.num_dips == 2**5 - 1
        assert oracle.query_count == result.num_dips
        assert locked.verify_key(original, result.key).equivalent

    def test_bench_circuit_xor_lock_equivalent_key(self):
        from repro.bench_circuits.iscas85 import iscas85_like

        original = iscas85_like("c880", 0.2)
        locked = xor_lock(original, 6, seed=8)
        result = sat_attack(locked, Oracle(original))
        assert result.succeeded
        assert locked.verify_key(original, result.key).equivalent


class TestPinnedAttacks:
    @given(pin_bits=st.integers(0, 3))
    def test_pinned_key_unlocks_subspace(self, pin_bits):
        original = random_netlist(6, 35, seed=21)
        locked = sarlock_lock(original, 4, seed=2)
        pin = {
            original.inputs[0]: bool(pin_bits & 1),
            original.inputs[1]: bool(pin_bits & 2),
        }
        result = sat_attack(locked, Oracle(original), pin=pin)
        assert result.succeeded
        good = brute_force_keys(locked, Oracle(original), pin=pin)
        assert result.key_int in good

    def test_pinning_reduces_dips_for_sarlock(self):
        original = random_netlist(8, 40, seed=23)
        locked = sarlock_lock(original, 5, seed=0)
        full = sat_attack(locked, Oracle(original))
        pinned = sat_attack(
            locked, Oracle(original), pin={original.inputs[0]: False}
        )
        assert pinned.num_dips < full.num_dips

    def test_pin_on_key_port_rejected(self):
        original = random_netlist(6, 30, seed=2)
        locked = xor_lock(original, 3, seed=1)
        with pytest.raises(ValueError):
            sat_attack(
                locked, Oracle(original), pin={locked.key_inputs[0]: True}
            )

    def test_pin_on_unknown_net_rejected(self):
        original = random_netlist(6, 30, seed=2)
        locked = xor_lock(original, 3, seed=1)
        with pytest.raises(ValueError):
            sat_attack(locked, Oracle(original), pin={"ghost": True})


class TestBudgets:
    def test_max_dips(self):
        original = random_netlist(8, 40, seed=31)
        locked = sarlock_lock(original, 6, seed=0)
        result = sat_attack(locked, Oracle(original), max_dips=5)
        assert result.status == "dip_limit"
        assert result.num_dips == 5
        assert result.key is None

    def test_time_limit(self):
        original = random_netlist(8, 40, seed=32)
        locked = sarlock_lock(original, 8, seed=0)
        result = sat_attack(locked, Oracle(original), time_limit=0.05)
        assert result.status == "timeout"
        assert result.key is None

    def test_iteration_records(self):
        original = random_netlist(6, 30, seed=33)
        locked = sarlock_lock(original, 3, seed=0)
        result = sat_attack(locked, Oracle(original), record_iterations=True)
        assert len(result.iterations) == result.num_dips
        assert all(it.elapsed_seconds >= 0 for it in result.iterations)
        dips = [it.dip for it in result.iterations]
        assert all(set(d) == set(locked.original_inputs) for d in dips)

    def test_record_iterations_off(self):
        original = random_netlist(6, 30, seed=34)
        locked = sarlock_lock(original, 3, seed=0)
        result = sat_attack(locked, Oracle(original), record_iterations=False)
        assert result.iterations == []


class TestOracleAccounting:
    def test_queries_equal_dips(self):
        original = random_netlist(7, 35, seed=41)
        locked = sarlock_lock(original, 4, seed=0)
        oracle = Oracle(original)
        result = sat_attack(locked, oracle)
        assert oracle.query_count == result.num_dips
        assert result.oracle_queries == result.num_dips


class TestVerifyAgainstOracle:
    def test_correct_key_passes(self):
        original = random_netlist(6, 30, seed=51)
        locked = xor_lock(original, 4, seed=1)
        assert verify_key_against_oracle(
            locked, locked.correct_key_int, Oracle(original)
        )

    def test_corrupting_key_fails(self):
        original = random_netlist(6, 30, seed=52)
        locked = xor_lock(original, 4, seed=1)
        wrong = locked.correct_key_int ^ 0b1111
        assert not verify_key_against_oracle(
            locked, wrong, Oracle(original), num_samples=256
        )

    def test_subspace_key_passes_with_pin(self):
        original = random_netlist(6, 30, seed=53)
        locked = sarlock_lock(original, 4, seed=3)
        pin = {original.inputs[0]: False}
        good = brute_force_keys(locked, Oracle(original), pin=pin)
        subspace_only = [k for k in good if k != locked.correct_key_int]
        if subspace_only:
            key = subspace_only[0]
            assert verify_key_against_oracle(
                locked, key, Oracle(original), pin=pin, num_samples=128
            )


class TestBruteForce:
    def test_full_space_finds_only_correct_sarlock_key(self):
        original = random_netlist(5, 25, seed=61)
        locked = sarlock_lock(original, 4, seed=2)
        assert brute_force_keys(locked, Oracle(original)) == [
            locked.correct_key_int
        ]

    def test_antisat_diagonal_keys(self):
        original = random_netlist(5, 25, seed=62)
        locked = antisat_lock(original, 3, seed=2)
        good = brute_force_keys(locked, Oracle(original))
        expected = [h | (h << 3) for h in range(8)]
        assert sorted(good) == sorted(expected)

    def test_size_guard(self):
        original = random_netlist(12, 40, seed=63)
        locked = xor_lock(original, 12, seed=0)
        with pytest.raises(ValueError):
            brute_force_keys(locked, Oracle(original))
