"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for everything: property tests here run whole
# SAT solves / circuit sweeps per example, so keep example counts sane.
settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        # Circuit fixtures are deterministic and never mutated by tests,
        # so sharing them across generated examples is safe.
        HealthCheck.function_scoped_fixture,
    ],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep runner caching hermetic: no test reads or writes the user's
    real ``~/.cache/repro-lock`` (CLI subcommands cache by default)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def small_circuit():
    """A deterministic 6-input random netlist used across suites."""
    from repro.circuit.random_circuits import random_netlist

    return random_netlist(6, 40, seed=42)


@pytest.fixture
def tiny_alu():
    """A 3-bit ALU: structured, multi-output, fast to simulate."""
    from repro.bench_circuits.generators import simple_alu

    return simple_alu(3, name="tiny_alu")
