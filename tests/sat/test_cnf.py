"""Tests for the CNF container and DIMACS I/O."""

import pytest

from repro.sat.cnf import CNF
from repro.sat.dimacs import parse_dimacs, write_dimacs


class TestCNF:
    def test_new_var_sequence(self):
        cnf = CNF()
        assert [cnf.new_var() for _ in range(3)] == [1, 2, 3]
        assert cnf.num_vars == 3

    def test_new_vars_bulk(self):
        cnf = CNF(2)
        assert cnf.new_vars(3) == [3, 4, 5]

    def test_new_vars_negative_rejected(self):
        with pytest.raises(ValueError):
            CNF().new_vars(-1)

    def test_negative_num_vars_rejected(self):
        with pytest.raises(ValueError):
            CNF(-5)

    def test_add_clause_grows_vars(self):
        cnf = CNF()
        cnf.add_clause([4, -7])
        assert cnf.num_vars == 7

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            CNF().add_clause([1, 0])

    def test_extend_merges(self):
        a = CNF(2)
        a.add_clause([1, 2])
        b = CNF(3)
        b.add_clause([-3])
        a.extend(b)
        assert a.num_vars == 3
        assert len(a) == 2

    def test_copy_is_deep_for_clauses(self):
        a = CNF(2)
        a.add_clause([1, 2])
        b = a.copy()
        b.clauses[0].append(-1)
        assert a.clauses[0] == [1, 2]

    def test_solve_returns_model(self):
        cnf = CNF()
        cnf.add_clause([1])
        cnf.add_clause([-1, 2])
        model = cnf.solve()
        assert model is not None
        assert set(model) == {1, 2}

    def test_solve_none_when_unsat(self):
        cnf = CNF()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert cnf.solve() is None

    def test_is_satisfied_by(self):
        cnf = CNF()
        cnf.add_clause([1, -2])
        assert cnf.is_satisfied_by({1: True, 2: True})
        assert cnf.is_satisfied_by({1: False, 2: False})
        assert not cnf.is_satisfied_by({1: False, 2: True})

    def test_repr(self):
        cnf = CNF(3)
        cnf.add_clause([1, 2])
        assert "vars=3" in repr(cnf)


class TestDimacs:
    def test_round_trip(self):
        cnf = CNF(4)
        cnf.add_clause([1, -2, 3])
        cnf.add_clause([-4])
        text = write_dimacs(cnf, comments=["hello"])
        back = parse_dimacs(text)
        assert back.num_vars == 4
        assert back.clauses == [[1, -2, 3], [-4]]

    def test_parse_comments_and_blank_lines(self):
        text = "c comment\n\np cnf 3 2\n1 2 0\nc mid\n-3 0\n"
        cnf = parse_dimacs(text)
        assert cnf.clauses == [[1, 2], [-3]]

    def test_parse_multiline_clause(self):
        cnf = parse_dimacs("p cnf 3 1\n1\n2 -3\n0\n")
        assert cnf.clauses == [[1, 2, -3]]

    def test_unterminated_clause_rejected(self):
        with pytest.raises(ValueError):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_malformed_problem_line_rejected(self):
        with pytest.raises(ValueError):
            parse_dimacs("p dnf 2 1\n1 0\n")

    def test_declared_vars_respected(self):
        cnf = parse_dimacs("p cnf 10 1\n1 0\n")
        assert cnf.num_vars == 10

    def test_file_round_trip(self, tmp_path):
        from repro.sat.dimacs import read_dimacs_file, write_dimacs_file

        cnf = CNF(2)
        cnf.add_clause([1, -2])
        path = tmp_path / "f.cnf"
        write_dimacs_file(cnf, str(path))
        back = read_dimacs_file(str(path))
        assert back.clauses == [[1, -2]]
