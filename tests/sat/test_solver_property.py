"""Property-based tests: the solver against brute-force ground truth."""

from hypothesis import given, strategies as st

from repro.sat.cnf import CNF
from repro.sat.random_cnf import brute_force_satisfiable, random_ksat


@given(
    seed=st.integers(0, 10_000),
    ratio=st.sampled_from([2.0, 3.5, 4.26, 5.0, 6.5]),
)
def test_agrees_with_brute_force_3sat(seed, ratio):
    cnf = random_ksat(10, int(10 * ratio), k=3, seed=seed)
    solver = cnf.to_solver()
    expected = brute_force_satisfiable(cnf)
    got = solver.solve()
    assert got == expected
    if got:
        assignment = {abs(l): l > 0 for l in solver.model()}
        assert cnf.is_satisfied_by(assignment)


@given(seed=st.integers(0, 10_000))
def test_agrees_with_brute_force_2sat(seed):
    cnf = random_ksat(12, 30, k=2, seed=seed)
    assert cnf.to_solver().solve() == brute_force_satisfiable(cnf)


@given(
    clauses=st.lists(
        st.lists(
            st.integers(-6, 6).filter(lambda x: x != 0),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=25,
    )
)
def test_arbitrary_clause_lists(clauses):
    """Messy clauses — duplicates, tautologies, units — never break it."""
    cnf = CNF(6)
    for clause in clauses:
        cnf.add_clause(clause)
    solver = cnf.to_solver()
    expected = brute_force_satisfiable(cnf)
    got = solver.solve()
    assert got == expected
    if got:
        assignment = {abs(l): l > 0 for l in solver.model()}
        assert cnf.is_satisfied_by(assignment)


@given(seed=st.integers(0, 10_000), flip=st.integers(1, 10))
def test_assumptions_equal_unit_clauses(seed, flip):
    """solve(assumptions=[l]) must agree with add_clause([l]) + solve()."""
    cnf = random_ksat(10, 35, k=3, seed=seed)
    with_assumption = cnf.to_solver().solve(assumptions=[flip])
    cnf2 = cnf.copy()
    cnf2.add_clause([flip])
    with_unit = cnf2.to_solver().solve()
    assert with_assumption == with_unit


@given(seed=st.integers(0, 10_000))
def test_incremental_equals_monolithic(seed):
    """Adding clauses in two batches matches adding them all at once."""
    cnf = random_ksat(10, 40, k=3, seed=seed)
    half = len(cnf.clauses) // 2
    solver = CNF(10).to_solver()
    for clause in cnf.clauses[:half]:
        solver.add_clause(clause)
    solver.solve()  # intermediate solve must not disturb correctness
    for clause in cnf.clauses[half:]:
        solver.add_clause(clause)
    assert solver.solve() == brute_force_satisfiable(cnf)
