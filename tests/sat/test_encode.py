"""Exhaustive checks of the Tseitin gate encoders.

Each encoder's CNF is enumerated over all input assignments: exactly
the assignments where ``out == f(ins)`` may satisfy the clause set.
"""

import itertools

import pytest

from repro.sat.cnf import CNF
from repro.sat.encode import (
    enc_and,
    enc_buf,
    enc_const,
    enc_mux,
    enc_nand,
    enc_nor,
    enc_not,
    enc_or,
    enc_xnor,
    enc_xor,
)


def _satisfied(clauses, assignment):
    return all(
        any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses
    )


def _check_gate(clauses, out_var, in_vars, func, aux_vars=()):
    """For every (ins, out) combo: clauses satisfiable iff out == f(ins)."""
    all_vars = [out_var] + list(in_vars) + list(aux_vars)
    for in_bits in itertools.product([False, True], repeat=len(in_vars)):
        for out_bit in (False, True):
            expected = out_bit == func(in_bits)
            feasible = False
            for aux_bits in itertools.product(
                [False, True], repeat=len(aux_vars)
            ):
                assignment = dict(zip(in_vars, in_bits))
                assignment[out_var] = out_bit
                assignment.update(dict(zip(aux_vars, aux_bits)))
                if _satisfied(clauses, assignment):
                    feasible = True
                    break
            assert feasible == expected, (in_bits, out_bit)


@pytest.mark.parametrize("arity", [1, 2, 3, 4])
def test_and(arity):
    ins = list(range(2, 2 + arity))
    _check_gate(enc_and(1, ins), 1, ins, lambda bits: all(bits))


@pytest.mark.parametrize("arity", [1, 2, 3, 4])
def test_or(arity):
    ins = list(range(2, 2 + arity))
    _check_gate(enc_or(1, ins), 1, ins, lambda bits: any(bits))


@pytest.mark.parametrize("arity", [1, 2, 3])
def test_nand(arity):
    ins = list(range(2, 2 + arity))
    _check_gate(enc_nand(1, ins), 1, ins, lambda bits: not all(bits))


@pytest.mark.parametrize("arity", [1, 2, 3])
def test_nor(arity):
    ins = list(range(2, 2 + arity))
    _check_gate(enc_nor(1, ins), 1, ins, lambda bits: not any(bits))


def test_not():
    _check_gate(enc_not(1, 2), 1, [2], lambda bits: not bits[0])


def test_buf():
    _check_gate(enc_buf(1, 2), 1, [2], lambda bits: bits[0])


def test_xor2():
    _check_gate(enc_xor(1, [2, 3]), 1, [2, 3], lambda b: b[0] ^ b[1])


def test_xnor2():
    _check_gate(enc_xnor(1, [2, 3]), 1, [2, 3], lambda b: not (b[0] ^ b[1]))


def test_xor_nary_with_aux():
    cnf = CNF(5)
    clauses = enc_xor(1, [2, 3, 4, 5], cnf.new_var)
    aux = list(range(6, cnf.num_vars + 1))
    _check_gate(
        clauses, 1, [2, 3, 4, 5],
        lambda bits: bits[0] ^ bits[1] ^ bits[2] ^ bits[3],
        aux_vars=aux,
    )


def test_xnor_nary_with_aux():
    cnf = CNF(4)
    clauses = enc_xnor(1, [2, 3, 4], cnf.new_var)
    aux = list(range(5, cnf.num_vars + 1))
    _check_gate(
        clauses, 1, [2, 3, 4],
        lambda bits: not (bits[0] ^ bits[1] ^ bits[2]),
        aux_vars=aux,
    )


def test_xor_nary_without_allocator_rejected():
    with pytest.raises(ValueError):
        enc_xor(1, [2, 3, 4])


def test_xor_single_input_is_buffer():
    _check_gate(enc_xor(1, [2]), 1, [2], lambda bits: bits[0])


def test_mux():
    _check_gate(
        enc_mux(1, 2, 3, 4), 1, [2, 3, 4],
        lambda bits: bits[1] if bits[0] else bits[2],
    )


def test_const():
    _check_gate(enc_const(1, True), 1, [], lambda bits: True)
    _check_gate(enc_const(1, False), 1, [], lambda bits: False)


def test_eq():
    from repro.sat.encode import enc_eq

    _check_gate(enc_eq(1, 2), 1, [2], lambda bits: bits[0])


def test_negated_operands_work():
    # out = AND(!a, b) via negated literal.
    _check_gate(
        enc_and(1, [-2, 3]), 1, [2, 3], lambda bits: (not bits[0]) and bits[1]
    )


def test_empty_and_is_true():
    _check_gate(enc_and(1, []), 1, [], lambda bits: True)


def test_empty_or_is_false():
    _check_gate(enc_or(1, []), 1, [], lambda bits: False)
