"""Unit tests for the CDCL solver."""

import pytest

from repro.sat.solver import BudgetExhausted, Solver, luby


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(15)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_powers_appear(self):
        values = {luby(i) for i in range(1023)}
        assert {1, 2, 4, 8, 16, 32, 64, 128, 256} <= values

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            luby(-1)


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        assert Solver().solve()

    def test_single_unit(self):
        s = Solver()
        s.add_clause([1])
        assert s.solve()
        assert s.model_value(1) is True

    def test_negative_unit(self):
        s = Solver()
        s.add_clause([-1])
        assert s.solve()
        assert s.model_value(1) is False

    def test_contradictory_units(self):
        s = Solver()
        s.add_clause([1])
        assert not s.add_clause([-1])
        assert not s.solve()

    def test_empty_clause_unsat(self):
        s = Solver()
        assert not s.add_clause([])
        assert not s.solve()

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Solver().add_clause([0])

    def test_tautology_ignored(self):
        s = Solver()
        s.add_clause([1, -1])
        assert s.solve()

    def test_duplicate_literals_collapse(self):
        s = Solver()
        s.add_clause([2, 2, 2])
        assert s.solve()
        assert s.model_value(2) is True

    def test_implication_chain(self):
        s = Solver()
        n = 50
        s.add_clause([1])
        for v in range(1, n):
            s.add_clause([-v, v + 1])
        assert s.solve()
        for v in range(1, n + 1):
            assert s.model_value(v) is True

    def test_simple_unsat(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([1, -2])
        s.add_clause([-1, 2])
        s.add_clause([-1, -2])
        assert not s.solve()

    def test_pigeonhole_3_into_2(self):
        # PHP(3,2): famous small UNSAT instance requiring real search.
        s = Solver()
        # var(p, h) for pigeon p in hole h
        def v(p, h):
            return p * 2 + h + 1

        for p in range(3):
            s.add_clause([v(p, 0), v(p, 1)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    s.add_clause([-v(p1, h), -v(p2, h)])
        assert not s.solve()

    def test_xor_chain_sat(self):
        # x1 ^ x2 ^ x3 = 1 encoded as CNF is satisfiable.
        s = Solver()
        s.add_clause([1, 2, 3])
        s.add_clause([1, -2, -3])
        s.add_clause([-1, 2, -3])
        s.add_clause([-1, -2, 3])
        assert s.solve()
        parity = sum(int(s.model_value(v)) for v in (1, 2, 3)) % 2
        assert parity == 1


class TestModel:
    def test_model_satisfies_all_clauses(self):
        from repro.sat.random_cnf import random_ksat

        cnf = random_ksat(40, 130, seed=5)
        solver = cnf.to_solver()
        assert solver.solve()
        assignment = {abs(l): l > 0 for l in solver.model()}
        assert cnf.is_satisfied_by(assignment)

    def test_model_value_out_of_range(self):
        s = Solver()
        s.add_clause([1])
        s.solve()
        assert s.model_value(0) is None
        assert s.model_value(99) is None

    def test_model_survives_until_next_call(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve()
        first = (s.model_value(1), s.model_value(2))
        assert True in first


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1])
        assert s.model_value(1) is False
        assert s.model_value(2) is True

    def test_conflicting_assumption_unsat_without_poisoning(self):
        s = Solver()
        s.add_clause([1])
        assert not s.solve(assumptions=[-1])
        assert s.solve()  # still SAT without the assumption
        assert s.solve(assumptions=[1])

    def test_mutually_conflicting_assumptions(self):
        s = Solver()
        s.add_clause([1, 2])
        assert not s.solve(assumptions=[1, -1])

    def test_assumptions_drive_unsat_core_region(self):
        s = Solver()
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        assert not s.solve(assumptions=[1, -3])
        assert s.solve(assumptions=[1, 3])

    def test_many_assumptions(self):
        s = Solver()
        for v in range(1, 21):
            s.add_clause([v, v + 100])
        assumptions = [-v for v in range(1, 21)]
        assert s.solve(assumptions=assumptions)
        for v in range(1, 21):
            assert s.model_value(v) is False
            assert s.model_value(v + 100) is True


class TestIncremental:
    def test_add_after_solve(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve()
        s.add_clause([-1])
        assert s.solve()
        assert s.model_value(2) is True

    def test_progressive_tightening_to_unsat(self):
        s = Solver()
        s.add_clause([1, 2, 3])
        assert s.solve()
        s.add_clause([-1])
        assert s.solve()
        s.add_clause([-2])
        assert s.solve()
        s.add_clause([-3])
        assert not s.solve()

    def test_unsat_is_sticky(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1])
        assert not s.solve()
        s.add_clause([2])
        assert not s.solve()

    def test_new_vars_between_solves(self):
        s = Solver()
        s.add_clause([1])
        assert s.solve()
        s.add_clause([500, -1])
        assert s.solve()
        assert s.model_value(500) is True

    def test_solver_reuse_many_rounds(self):
        from repro.sat.random_cnf import random_ksat

        s = Solver()
        offset = 0
        for round_no in range(5):
            cnf = random_ksat(15, 40, seed=round_no)
            for clause in cnf.clauses:
                s.add_clause(
                    [lit + offset if lit > 0 else lit - offset for lit in clause]
                )
            assert s.solve()
            offset += 15


class TestBudget:
    def test_budget_exhausted_raises(self):
        # PHP(6,5) is hard enough to exceed a 5-conflict budget.
        s = Solver()

        def v(p, h):
            return p * 5 + h + 1

        for p in range(6):
            s.add_clause([v(p, h) for h in range(5)])
        for h in range(5):
            for p1 in range(6):
                for p2 in range(p1 + 1, 6):
                    s.add_clause([-v(p1, h), -v(p2, h)])
        with pytest.raises(BudgetExhausted):
            s.solve(conflict_budget=5)

    def test_budget_leaves_solver_usable(self):
        s = Solver()

        def v(p, h):
            return p * 5 + h + 1

        for p in range(6):
            s.add_clause([v(p, h) for h in range(5)])
        for h in range(5):
            for p1 in range(6):
                for p2 in range(p1 + 1, 6):
                    s.add_clause([-v(p1, h), -v(p2, h)])
        try:
            s.solve(conflict_budget=5)
        except BudgetExhausted:
            pass
        assert not s.solve()  # full solve still reaches the right answer


class TestStats:
    def test_counters_move(self):
        from repro.sat.random_cnf import random_ksat

        solver = random_ksat(60, 250, seed=3).to_solver()
        solver.solve()
        stats = solver.stats
        assert stats.solve_calls == 1
        assert stats.propagations > 0
        assert stats.decisions > 0

    def test_as_dict_keys(self):
        s = Solver()
        s.add_clause([1])
        s.solve()
        d = s.stats.as_dict()
        assert {"conflicts", "decisions", "propagations", "restarts"} <= set(d)


class TestCheckpointRollback:
    def test_rollback_removes_frame_clauses(self):
        s = Solver()
        s.add_clause([1, 2])
        mark = s.checkpoint()
        s.add_clause([3, 4])
        s.add_clause([-1])  # root unit inside the frame survives (var 1 <= mark)
        assert s.num_vars == 4
        s.rollback(mark)
        assert s.num_vars == 2
        assert s.num_clauses == 1
        assert s.solve()
        # The frame's unit on a surviving variable is kept.
        assert s.model_value(1) is False
        assert s.model_value(2) is True

    def test_rollback_drops_learnts_on_dropped_vars(self):
        from repro.sat.random_cnf import random_ksat

        solver = random_ksat(40, 170, seed=2).to_solver()
        # Learn about the base formula first, so surviving learnts exist.
        solver.solve()
        base_learnts = len(solver._learnts)
        assert base_learnts > 0
        mark = solver.checkpoint()
        guard = solver.new_var()
        # Force unsatisfiability under the guard, then learn about it.
        for var in range(1, 6):
            solver.add_clause([-guard, var])
            solver.add_clause([-guard, -var])
        assert not solver.solve(assumptions=[guard])
        solver.rollback(mark)
        assert solver.num_vars == 40
        # Clauses over base variables survive; none mention the guard.
        # (clause.lits holds internal literals: the variable is lit >> 1.)
        assert solver._learnts
        for clause in solver._learnts:
            assert all(lit >> 1 <= 40 for lit in clause.lits)
        # The base formula's satisfiability is untouched.
        assert solver.solve() == random_ksat(40, 170, seed=2).to_solver().solve()

    def test_rollback_is_repeatable_per_frame(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1, 2])
        for _ in range(5):
            mark = s.checkpoint()
            g = s.new_var()
            s.add_clause([-g, -2])
            assert not s.solve(assumptions=[g])
            assert s.solve()
            s.rollback(mark)
        assert s.num_vars == 2
        assert s.solve()
        assert s.model_value(2) is True

    def test_future_mark_rejected(self):
        s = Solver()
        mark = s.checkpoint()
        with pytest.raises(ValueError):
            s.rollback((mark[0] + 1, mark[1]))


class TestSimplifyInFrames:
    """Frame-safe simplify: shed in place, compact when frame-free."""

    def test_in_frame_simplify_holds_clause_indices(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1, 3])
        mark = s.checkpoint()
        g = s.new_var()
        s.add_clause([-g, 2])
        s.add_clause([1])  # root unit: satisfies [1,2], strips [-1,3]
        stored = len(s._clauses)
        assert s.simplify()
        # The checkpoint mark snapshots the clause-list length, so an
        # in-frame simplify may only flag, never compact.
        assert len(s._clauses) == stored
        assert any(clause.deleted for clause in s._clauses)
        # The guarded clause still works under its assumption.
        assert s.solve(assumptions=[g])
        assert s.model_value(2) is True
        s.rollback(mark)
        assert s.solve()
        assert s.model_value(1) is True
        assert s.model_value(3) is True

    def test_frame_free_simplify_compacts(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1, 3])
        s.add_clause([1])
        before = len(s._clauses)
        assert s.simplify()
        assert len(s._clauses) < before  # satisfied clauses really gone
        assert all(not clause.deleted for clause in s._clauses)
        assert s.solve()
        assert s.model_value(3) is True

    def test_flagged_clauses_compact_after_rollback(self):
        s = Solver()
        s.add_clause([1, 2])
        mark = s.checkpoint()
        s.add_clause([1])
        assert s.simplify()  # flags [1,2] in place
        s.rollback(mark)
        assert s.simplify()  # frame-free: compacts the flagged clause
        assert all(not clause.deleted for clause in s._clauses)
        assert s.solve()
        assert s.model_value(1) is True

    def test_repeated_shard_style_frames_stay_sound(self):
        """The ShardEngine access pattern: frame, guard, simplify, roll."""
        from repro.sat.random_cnf import random_ksat

        cnf = random_ksat(30, 120, seed=6)
        solver = cnf.to_solver()
        baseline = solver.solve()
        for round_ in range(4):
            mark = solver.checkpoint()
            guard = solver.new_var()
            assert solver.simplify()
            solver.add_clause([-guard, 1 if round_ % 2 else -1])
            solver.solve(assumptions=[guard])
            solver.rollback(mark)
        assert solver.simplify()
        assert solver.solve() == baseline


class TestClauseExchange:
    def test_export_import_roundtrip(self):
        from repro.sat.random_cnf import random_ksat

        cnf = random_ksat(50, 210, seed=5)
        donor = cnf.to_solver()
        donor.solve()
        exported = donor.export_learnts()
        receiver = cnf.to_solver()
        imported = receiver.import_learnts(exported)
        assert imported == len(exported)
        assert receiver.solve() == donor.solve()

    def test_export_respects_max_var(self):
        from repro.sat.random_cnf import random_ksat

        solver = random_ksat(30, 120, seed=9).to_solver()
        solver.solve()
        for clause in solver.export_learnts(max_var=10):
            assert all(abs(lit) <= 10 for lit in clause)

    def test_export_respects_max_lbd(self):
        from repro.sat.random_cnf import random_ksat

        solver = random_ksat(40, 170, seed=2).to_solver()
        solver.solve()
        capped = solver.export_learnts(max_lbd=2)
        assert len(capped) <= len(solver.export_learnts())

    def test_import_drops_tautology_and_satisfied(self):
        s = Solver()
        s.add_clause([1])
        assert s.import_learnts([[2, -2], [1, 3]]) == 0
        assert s.solve()

    def test_imported_clauses_participate(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.import_learnts([[-1], [-2, 3]]) == 2
        assert s.solve()
        assert s.model_value(1) is False
        assert s.model_value(2) is True
        assert s.model_value(3) is True
