"""Backend conformance suite: every registered solver vs the contract.

Parametrized over :func:`repro.sat.registered_solvers`, so installing
an optional backend (e.g. ``pip install python-sat``) automatically
widens the matrix.  Each test gates on the capability it exercises —
a backend that declares ``checkpoint`` off *skips* the frame tests
instead of failing them, so the suite documents exactly which part of
the warm-start contract each backend honours.
"""

import pytest

from repro.attacks.sat_attack import sat_attack
from repro.circuit.random_circuits import random_netlist
from repro.locking.sarlock import sarlock_lock
from repro.oracle.oracle import Oracle
from repro.sat import (
    BudgetExhausted,
    SolverCapabilities,
    create_solver,
    default_solver_name,
    register_solver,
    registered_solvers,
    resolve_solver_name,
    solver_info,
)

BACKENDS = registered_solvers()


def caps(name: str) -> SolverCapabilities:
    return solver_info(name).capabilities


def needs(name: str, flag: str) -> None:
    if not getattr(caps(name), flag):
        pytest.skip(f"backend {name!r} does not declare {flag}")


def php_clauses(pigeons: int, holes: int) -> list[list[int]]:
    """Pigeonhole clauses (UNSAT when pigeons > holes): conflict fuel."""
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p in range(pigeons):
            for q in range(p + 1, pigeons):
                clauses.append([-var(p, h), -var(q, h)])
    return clauses


class TestRegistry:
    def test_python_backend_always_registered(self):
        assert "python" in BACKENDS
        info = solver_info("python")
        assert info.supports_sharding
        assert info.capabilities.learnt_export

    def test_unknown_name_raises_with_roster(self):
        with pytest.raises(ValueError, match="registered:.*python"):
            solver_info("no-such-backend")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver(
                "python", capabilities=SolverCapabilities()
            )(lambda: None)

    def test_reregistering_same_factory_is_idempotent(self):
        factory = solver_info("python").factory
        register_solver(
            "python",
            capabilities=SolverCapabilities(
                assumptions=True,
                checkpoint=True,
                learnt_export=True,
                conflict_budget=True,
            ),
        )(factory)
        assert solver_info("python").factory is factory

    def test_env_var_sets_process_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "python")
        assert default_solver_name() == "python"
        assert resolve_solver_name(None) == "python"
        monkeypatch.setenv("REPRO_SOLVER", "no-such-backend")
        with pytest.raises(ValueError, match="unknown solver backend"):
            resolve_solver_name(None)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "no-such-backend")
        assert resolve_solver_name("python") == "python"

    def test_sharding_needs_checkpoint_and_assumptions(self):
        info = solver_info("python")
        assert info.supports_sharding == (
            info.capabilities.checkpoint and info.capabilities.assumptions
        )


@pytest.mark.parametrize("name", BACKENDS)
class TestBasicSolving:
    def test_satisfiable(self, name):
        s = create_solver(name)
        assert s.backend_name == name
        s.add_clauses([[1, 2], [-1, 2], [3]])
        assert s.solve()
        assert s.model_value(2) is True
        assert s.model_value(3) is True

    def test_unsatisfiable(self, name):
        s = create_solver(name)
        s.add_clauses([[1], [-1]])
        assert not s.solve()

    def test_model_satisfies_every_clause(self, name):
        clauses = [[1, -2, 3], [-1, 2], [2, -3], [-2, -3, 4], [1, 4]]
        s = create_solver(name)
        s.add_clauses(clauses)
        assert s.solve()
        model = {v: s.model_value(v) for v in range(1, 5)}
        for clause in clauses:
            assert any(
                model[abs(lit)] is (lit > 0) for lit in clause
            ), f"{name}: clause {clause} falsified by {model}"

    def test_stats_contract(self, name):
        s = create_solver(name)
        s.add_clauses([[1, 2], [-1, 2]])
        s.solve()
        stats = s.stats.as_dict()
        for key in ("conflicts", "decisions", "propagations", "solve_calls",
                    "budget_aborts"):
            assert key in stats, f"{name}: stats missing {key!r}"
        assert stats["solve_calls"] == 1
        assert stats["budget_aborts"] == 0


@pytest.mark.parametrize("name", BACKENDS)
class TestAssumptions:
    def test_assumptions_pin_without_poisoning(self, name):
        needs(name, "assumptions")
        s = create_solver(name)
        s.add_clauses([[1, 2]])
        assert s.solve(assumptions=[-1])
        assert s.model_value(2) is True
        # The pin must not persist: the opposite pin still solves.
        assert s.solve(assumptions=[1])
        assert s.model_value(1) is True
        # And an unconstrained call is free again.
        assert s.solve()

    def test_unsat_under_assumptions_is_not_sticky(self, name):
        needs(name, "assumptions")
        s = create_solver(name)
        s.add_clauses([[1, 2], [1, -2]])
        assert not s.solve(assumptions=[-1])
        assert s.solve()
        assert s.model_value(1) is True


@pytest.mark.parametrize("name", BACKENDS)
class TestConflictBudget:
    def test_budget_abort_raises_and_counts(self, name):
        needs(name, "conflict_budget")
        s = create_solver(name)
        s.add_clauses(php_clauses(6, 5))
        with pytest.raises(BudgetExhausted):
            s.solve(conflict_budget=5)
        assert s.stats.as_dict()["budget_aborts"] == 1

    def test_solver_usable_after_budget_abort(self, name):
        needs(name, "conflict_budget")
        s = create_solver(name)
        s.add_clauses(php_clauses(6, 5))
        with pytest.raises(BudgetExhausted):
            s.solve(conflict_budget=5)
        top = s.num_vars + 1
        s.add_clause([top])
        assert s.solve(assumptions=[top]) or True  # must not raise
        assert s.stats.as_dict()["budget_aborts"] == 1


@pytest.mark.parametrize("name", BACKENDS)
class TestCheckpointFrames:
    def test_rollback_discards_frame_clauses(self, name):
        """The sharded engine's shape: frame clauses hang off a fresh
        guard variable, so rollback erases them wholesale (root units
        on *surviving* variables are kept by contract)."""
        needs(name, "checkpoint")
        needs(name, "assumptions")
        s = create_solver(name)
        s.add_clauses([[1, 2]])
        mark = s.checkpoint()
        guard = s.new_var()
        s.add_clauses([[-guard, -1], [-guard, -2]])
        assert not s.solve(assumptions=[guard])
        s.rollback(mark)
        assert s.num_vars == 2
        assert s.solve()

    def test_frames_reusable_many_times(self, name):
        needs(name, "checkpoint")
        needs(name, "assumptions")
        s = create_solver(name)
        s.add_clauses([[1, 2, 3]])
        for forbidden in (1, 2, 3):
            mark = s.checkpoint()
            guard = s.new_var()
            s.add_clause([-guard, -forbidden])
            assert s.solve(assumptions=[guard])
            assert s.model_value(forbidden) is False
            s.rollback(mark)
        assert s.solve()


@pytest.mark.parametrize("name", BACKENDS)
class TestLearntExchange:
    def test_root_units_exported(self, name):
        """The warm-start bugfix: root-level facts ARE the cheapest
        learnts, and a fresh importer must receive them as units."""
        needs(name, "learnt_export")
        s = create_solver(name)
        for _ in range(3):
            s.new_var()
        s.add_clauses([[1], [-1, 2]])
        assert s.solve()
        exported = s.export_learnts()
        assert [1] in exported
        assert [2] in exported  # propagated at root, not just asserted

    def test_export_respects_max_var(self, name):
        needs(name, "learnt_export")
        s = create_solver(name)
        for _ in range(5):
            s.new_var()
        s.add_clauses([[1], [5], [-1, 2]])
        assert s.solve()
        exported = s.export_learnts(max_var=2)
        assert [1] in exported
        assert [2] in exported
        assert [5] not in exported
        assert all(max(abs(l) for l in c) <= 2 for c in exported)

    def test_unit_round_trip_primes_importer(self, name):
        """A unit the donor *learned* (not asserted) must cross the
        export/import seam and spare the receiver the same conflict."""
        needs(name, "learnt_export")
        clauses = [[1, 2], [1, -2], [2, 3]]  # resolution forces 1=True
        donor = create_solver(name)
        donor.add_clauses(clauses)
        assert donor.solve()
        exported = donor.export_learnts()
        assert [1] in exported  # the learned unit reached the export
        receiver = create_solver(name)
        receiver.add_clauses(clauses)
        assert receiver.import_learnts(exported) >= 1
        assert receiver.solve()
        assert receiver.model_value(1) is True
        # Primed with the donor's fact, the receiver never conflicts.
        assert receiver.stats.as_dict()["conflicts"] == 0

    def test_learnt_clause_round_trip(self, name):
        needs(name, "learnt_export")
        donor = create_solver(name)
        donor.add_clauses(php_clauses(4, 3))
        assert not donor.solve()
        exported = donor.export_learnts()
        receiver = create_solver(name)
        receiver.add_clauses(php_clauses(4, 3))
        receiver.import_learnts(exported)
        assert not receiver.solve()


@pytest.mark.parametrize("name", BACKENDS)
class TestAttackParity:
    """Different backends, identical verdicts (ISSUE acceptance)."""

    def test_sat_attack_same_key_and_dip_count(self, name):
        original = random_netlist(8, 50, seed=7)
        locked = sarlock_lock(original, 4, seed=1)
        result = sat_attack(locked, Oracle(original), solver=name)
        assert result.succeeded
        assert result.key_int == locked.correct_key_int
        # SARLock's DIP count is scheme-determined (one per wrong key),
        # so it is backend-invariant: 2^k - 1.
        assert result.num_dips == 2**4 - 1

    def test_multikey_attack_reports_backend(self, name):
        from repro.core.multikey import multikey_attack

        original = random_netlist(8, 40, seed=3)
        locked = sarlock_lock(original, 4, seed=2)
        result = multikey_attack(
            locked, original, effort=1, engine="sharded", solver=name
        )
        assert result.status == "ok"
        assert result.solver == name
        expected = "sharded" if solver_info(name).supports_sharding else "reference"
        assert result.engine == expected


class TestSpecThreading:
    def test_scenario_spec_resolves_and_validates_solver(self):
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(schemes=["sarlock"])
        assert spec.solver == resolve_solver_name(None)
        with pytest.raises(ValueError, match="unknown solver backend"):
            ScenarioSpec(schemes=["sarlock"], solver="no-such-backend")

    def test_engine_axis_collapses_without_sharding_support(self):
        from repro.scenarios.spec import ScenarioSpec

        @register_solver(
            "_test_flat",
            capabilities=SolverCapabilities(assumptions=True),
        )
        def _flat():  # pragma: no cover - never instantiated
            raise AssertionError

        try:
            spec = ScenarioSpec(
                schemes=["sarlock"],
                engines=["sharded", "reference"],
                solver="_test_flat",
            )
            assert spec.effective_engines("sat") == ["reference"]
            assert spec.size == 1
        finally:
            from repro.sat import registry

            registry._REGISTRY.pop("_test_flat", None)

    def test_attack_request_validates_solver(self):
        from repro.service.envelopes import AttackRequest

        with pytest.raises(ValueError, match="unknown solver backend"):
            AttackRequest(solver="no-such-backend")

    def test_shard_engine_rejects_flat_backend(self):
        from repro.core.sharded import ShardEngine

        @register_solver(
            "_test_flat2",
            capabilities=SolverCapabilities(assumptions=True),
        )
        def _flat():  # pragma: no cover - never instantiated
            raise AssertionError

        try:
            original = random_netlist(6, 30, seed=5)
            locked = sarlock_lock(original, 3, seed=5)
            with pytest.raises(ValueError, match="reference"):
                ShardEngine(
                    locked,
                    Oracle(original),
                    splitting_inputs=[locked.netlist.inputs[0]],
                    solver="_test_flat2",
                )
        finally:
            from repro.sat import registry

            registry._REGISTRY.pop("_test_flat2", None)


class TestSimplify:
    """Root-level preprocessing on the python backend."""

    def test_simplify_preserves_satisfiability(self):
        s = create_solver("python")
        clauses = [[1], [-1, 2], [2, 3, 4], [-2, 4, 5], [-4, -5]]
        s.add_clauses(clauses)
        assert s.simplify()
        assert s.solve()
        model = {v: s.model_value(v) for v in range(1, 6)}
        for clause in clauses:
            assert any(model[abs(lit)] is (lit > 0) for lit in clause)

    def test_simplify_drops_satisfied_and_strips_falsified(self):
        """The sat_attack shape: the miter is encoded first, the pin
        units land afterwards, simplify propagates them back through."""
        s = create_solver("python")
        s.add_clauses([[1, 2], [-1, 2, 3], [2, 4]])
        s.add_clause([1])  # the pin, after the encoding
        assert s.num_clauses == 3
        assert s.simplify()
        # [1, 2] is root-satisfied (dropped); [-1, 2, 3] loses -1.
        assert s.num_clauses == 2
        assert s.solve()

    def test_simplify_reports_root_conflict(self):
        s = create_solver("python")
        s.add_clauses([[1], [-1]])
        assert not s.simplify()
        assert not s.solve()
