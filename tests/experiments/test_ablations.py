"""Ablation runner tests (A1 splitting strategy, A2 synthesis)."""

from repro.experiments.ablation_splitting import run_splitting_ablation
from repro.experiments.ablation_synthesis import run_synthesis_ablation
from repro.locking.lut_lock import LutModuleSpec


class TestSplittingAblation:
    def test_strategies_compared(self):
        result = run_splitting_ablation(
            circuit="c6288",
            scale=0.2,
            effort=2,
            spec=LutModuleSpec.tiny(),
            strategies=("fanout", "random"),
            time_limit_per_task=60.0,
        )
        assert [row.strategy for row in result.rows] == ["fanout", "random"]
        assert all(row.status == "ok" for row in result.rows)
        text = result.format()
        assert "fanout" in text and "random" in text

    def test_fanout_not_worse_on_conditional_size(self):
        """The paper's heuristic should produce conditional netlists at
        least as small as naive 'first' selection on a LUT-locked
        circuit (its padding inputs are the high-influence ones)."""
        result = run_splitting_ablation(
            circuit="c6288",
            scale=0.25,
            effort=3,
            spec=LutModuleSpec.small(),
            strategies=("fanout", "first"),
            time_limit_per_task=60.0,
        )
        by_name = {row.strategy: row for row in result.rows}
        assert (
            by_name["fanout"].mean_gates_after
            <= by_name["first"].mean_gates_after * 1.05
        )


class TestSynthesisAblation:
    def test_synthesis_shrinks_instances(self):
        result = run_synthesis_ablation(
            circuit="c880",
            scale=0.25,
            effort=2,
            spec=LutModuleSpec.tiny(),
            time_limit_per_task=60.0,
        )
        on, off = result.rows
        assert on.synthesis and not off.synthesis
        assert on.mean_gates < off.mean_gates
        assert on.status == off.status == "ok"

    def test_format(self):
        result = run_synthesis_ablation(
            circuit="c880",
            scale=0.2,
            effort=1,
            spec=LutModuleSpec.tiny(),
            time_limit_per_task=60.0,
        )
        assert "A2" in result.format()
