"""Table 2 reproduction tests (tiny configuration for CI speed)."""

from repro.experiments.table2 import TABLE2_CIRCUITS, run_table2
from repro.locking.lut_lock import LutModuleSpec


class TestTable2:
    def test_tiny_run_structure(self):
        result = run_table2(
            circuits=("c880", "c6288"),
            scale=0.2,
            spec=LutModuleSpec.tiny(),
            effort=2,
            parallel=False,
            time_limit_per_task=60.0,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.baseline_status == "ok"
            assert row.multikey_status == "ok"
            assert row.min_seconds <= row.mean_seconds <= row.max_seconds
            assert row.ratio > 0
            assert len(row.dips_per_task) == 4
            assert row.composition_equivalent is True

    def test_format_lists_circuits(self):
        result = run_table2(
            circuits=("c880",),
            scale=0.2,
            spec=LutModuleSpec.tiny(),
            effort=1,
            parallel=False,
            time_limit_per_task=60.0,
            verify=False,
        )
        text = result.format()
        assert "Table 2" in text
        assert "c880" in text
        assert "Maximum/Baseline" in text

    def test_paper_circuit_list(self):
        assert TABLE2_CIRCUITS == (
            "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288",
            "c7552",
        )
