"""Table 1 reproduction tests: the #DIP law for SARLock."""

from repro.experiments.table1 import run_table1


class TestTable1:
    def test_small_grid_shape(self):
        result = run_table1(
            key_sizes=(4,), efforts=(0, 1, 2), scale=0.12
        )
        baseline = result.cell(4, 0)
        assert baseline.max_dips == 2**4 - 1  # one DIP per wrong key
        assert baseline.uniform
        n1 = result.cell(4, 1)
        n2 = result.cell(4, 2)
        # Halving law (paper Table 1): ~2x fewer DIPs per splitting level.
        assert baseline.max_dips > n1.max_dips > n2.max_dips
        assert n1.max_dips <= (baseline.max_dips + 1) // 2 + 1
        assert len(n1.dips_per_task) == 2
        assert len(n2.dips_per_task) == 4

    def test_near_uniform_tasks(self):
        """Paper: 'the same #DIP for all the parallelized tasks'.  The
        sub-space containing k* can need one DIP fewer, so allow a
        spread of 1."""
        result = run_table1(key_sizes=(4,), efforts=(2,), scale=0.12)
        dips = result.cell(4, 2).dips_per_task
        assert max(dips) - min(dips) <= 1

    def test_exponential_in_key_size(self):
        result = run_table1(key_sizes=(3, 5), efforts=(0,), scale=0.12)
        assert result.cell(3, 0).max_dips == 7
        assert result.cell(5, 0).max_dips == 31

    def test_format_contains_grid(self):
        result = run_table1(key_sizes=(3,), efforts=(0, 1), scale=0.12)
        text = result.format()
        assert "Table 1" in text
        assert "N=0 (baseline)" in text
        assert "7" in text

    def test_all_cells_ok(self):
        result = run_table1(key_sizes=(3,), efforts=(0, 1, 2), scale=0.12)
        assert all(cell.status == "ok" for cell in result.cells)
