"""Figure 1 reproduction tests — these check the paper's exact claims."""

from repro.experiments.figure1 import paper_example_circuit, run_figure1


class TestFigure1:
    def test_error_matrix_law(self):
        result = run_figure1(correct_key=0b101)
        for i in range(8):
            for k in range(8):
                assert result.matrix[i][k] == ((i == k) and (k != 0b101))

    def test_paper_key_sets(self):
        """Paper: three incorrect keys (100, 110, 111) unlock the MSB=0
        half alongside k* = 101."""
        result = run_figure1(correct_key=0b101)
        assert set(result.keys_msb0) == {0b100, 0b101, 0b110, 0b111}
        assert 0b101 in result.keys_msb1
        assert len(result.keys_msb1) == 5

    def test_composition_equivalent(self):
        result = run_figure1()
        assert result.composition_equivalent
        assert all(k in result.keys_msb0 + result.keys_msb1
                   for k in result.chosen_keys)

    def test_incorrect_pair_composes_to_equivalent(self):
        result = run_figure1()
        assert result.incorrect_pair is not None
        a, b = result.incorrect_pair
        assert a != result.correct_key
        assert b != result.correct_key
        assert result.incorrect_pair_equivalent is True

    def test_other_correct_keys(self):
        """The law holds for any chosen k*."""
        result = run_figure1(correct_key=0b010)
        for i in range(8):
            for k in range(8):
                assert result.matrix[i][k] == ((i == k) and (k != 0b010))

    def test_format_renders(self):
        text = run_figure1().format()
        assert "Figure 1(a)" in text
        assert "Figure 1(b)" in text
        assert "101" in text

    def test_example_circuit_shape(self):
        n = paper_example_circuit()
        assert len(n.inputs) == 3
        assert len(n.outputs) == 1
