"""D1 defense-experiment tests."""

from repro.experiments.defense import run_defense_experiment


class TestDefenseExperiment:
    def test_headline_comparison(self):
        # c1908 at scale 0.25 has 8 primary inputs; distance-3 tap
        # codes over 8 columns max out at 4 rows (Hamming bound), so
        # |K| = 4 is the largest guaranteed configuration here.
        result = run_defense_experiment(
            circuit="c1908",
            scale=0.25,
            key_size=4,
            effort=2,
            time_limit_per_task=120.0,
        )
        by_name = {row.scheme: row for row in result.rows}
        sarlock = by_name["sarlock"]
        entangled = by_name["entangled"]
        # The defense closes the multi-key loophole...
        assert entangled.subspace_keys == 1
        assert sarlock.subspace_keys > 1
        # ... so sub-attacks stop getting cheaper in DIP terms.
        assert entangled.multikey_max_dips >= sarlock.multikey_max_dips
        assert sarlock.status == entangled.status == "ok"

    def test_format(self):
        result = run_defense_experiment(
            circuit="c1908",
            scale=0.25,
            key_size=4,
            effort=1,
            time_limit_per_task=120.0,
        )
        text = result.format()
        assert "D1" in text
        assert "sarlock" in text and "entangled" in text
