"""CLI smoke tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("figure1", "table1", "table2", "attack", "bench",
                    "ablation", "defense", "cache", "matrix"):
            assert cmd in text

    def test_runner_flags_on_experiment_commands(self):
        parser = build_parser()
        for cmd in ("figure1", "table1", "table2", "ablation", "defense"):
            args = parser.parse_args(
                [cmd] + (["both"] if cmd == "ablation" else [])
                + ["--jobs", "4", "--cache-dir", "/tmp/x", "--no-cache"]
            )
            assert args.jobs == 4
            assert args.cache_dir == "/tmp/x"
            assert args.no_cache

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1(a)" in out
        assert "equivalent = True" in out

    def test_table1_small(self, capsys):
        assert main([
            "table1", "--key-sizes", "3", "--efforts", "0,1",
            "--scale", "0.12",
        ]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_bench_emission(self, capsys, tmp_path):
        assert main(["bench", "--circuit", "c432", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "INPUT(" in out
        path = tmp_path / "x.bench"
        assert main([
            "bench", "--circuit", "c432", "--scale", "0.3", "--out", str(path)
        ]) == 0
        assert path.exists()

    def test_table1_warm_cache_is_identical(self, capsys, tmp_path):
        argv = [
            "table1", "--key-sizes", "3", "--efforts", "0,1",
            "--scale", "0.12", "--cache-dir", str(tmp_path), "--quiet",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert cold == warm
        assert (tmp_path / "scenario_cell").is_dir()

    def test_defense_runs(self, capsys):
        assert main([
            "defense", "--circuit", "c1908", "--scale", "0.25",
            "--key-size", "4", "-N", "1", "--time-limit", "60",
            "--no-cache", "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "D1" in out and "entangled" in out

    def test_cache_info_and_clear(self, capsys, tmp_path):
        assert main([
            "figure1", "--cache-dir", str(tmp_path), "--quiet"
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "figure1: 1 artifact(s)" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 artifact(s)" in capsys.readouterr().out

    def test_cache_dir_naming_a_file_is_a_clean_error(self, tmp_path):
        not_a_dir = tmp_path / "file.txt"
        not_a_dir.write_text("x")
        with pytest.raises(SystemExit, match="not a directory"):
            main(["figure1", "--cache-dir", str(not_a_dir), "--quiet"])

    def test_matrix_list_rosters(self, capsys):
        assert main(["matrix", "--list-schemes", "--list-attacks"]) == 0
        out = capsys.readouterr().out
        for name in ("sarlock", "xor", "lut", "antisat", "entangled"):
            assert name in out
        for name in ("sat", "appsat", "brute_force"):
            assert name in out
        assert "[shared-encoding]" in out

    def test_matrix_small_grid_with_exports(self, capsys, tmp_path):
        csv_path = tmp_path / "matrix.csv"
        json_path = tmp_path / "matrix.json"
        assert main([
            "matrix", "--schemes", "sarlock,xor", "--attacks", "sat",
            "--engines", "sharded,reference", "--circuits", "c432",
            "--scale", "0.12", "--key-size", "3", "--efforts", "1",
            "--no-cache", "--quiet",
            "--csv", str(csv_path), "--json", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Scenario matrix: 4 cells" in out
        assert csv_path.read_text().startswith("scheme,")
        import json

        payload = json.loads(json_path.read_text())
        assert len(payload["cells"]) == 4

    def test_matrix_unknown_scheme_is_clean_error(self):
        with pytest.raises(SystemExit, match="unknown locking scheme"):
            main(["matrix", "--schemes", "nope", "--no-cache", "--quiet"])

    def test_matrix_exits_nonzero_on_failed_cells(self, capsys):
        # A 1-DIP budget cannot finish the attack: cells go partial and
        # the exit code must say so (CI smoke relies on this).
        assert main([
            "matrix", "--schemes", "sarlock", "--attacks", "sat",
            "--circuits", "c432", "--scale", "0.12", "--key-size", "4",
            "--efforts", "1", "--max-dips", "1", "--no-cache", "--quiet",
        ]) == 1
        assert "partial" in capsys.readouterr().out

    def test_matrix_scheme_param_error_is_clean(self):
        # LockingError surfaces from the cell worker, not spec
        # validation: an odd antisat key has no ka‖kb split.
        with pytest.raises(SystemExit, match="even"):
            main([
                "matrix", "--schemes", "antisat", "--key-size", "3",
                "--circuits", "c432", "--scale", "0.12", "--efforts", "1",
                "--no-cache", "--quiet",
            ])

    def test_attack_scheme_errors_are_clean(self):
        with pytest.raises(SystemExit, match="unknown locking scheme"):
            main(["attack", "--scheme", "nope", "--scale", "0.12"])
        with pytest.raises(SystemExit, match="even"):
            main([
                "attack", "--scheme", "antisat", "--key-size", "3",
                "--circuit", "c432", "--scale", "0.12",
            ])

    def test_attack_sarlock(self, capsys):
        code = main([
            "attack", "--circuit", "c1908", "--scheme", "sarlock",
            "--key-size", "4", "-N", "1", "--scale", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "composition equivalent: True" in out


class TestServiceSurface:
    """The thin-client redesign: envelopes in, rendered events out."""

    def test_serve_subcommand_registered(self):
        parser = build_parser()
        assert "serve" in parser.format_help()
        args = parser.parse_args(["serve", "--port", "0", "--jobs", "2"])
        assert args.port == 0 and args.jobs == 2

    def test_attack_takes_runner_flags(self):
        # The pre-service CLI built an ad-hoc Runner inside _cmd_attack
        # that ignored --jobs/--cache-dir; attack now shares the
        # standard runner flag group.
        args = build_parser().parse_args(
            ["attack", "--jobs", "3", "--cache-dir", "/tmp/x", "--no-cache"]
        )
        assert args.jobs == 3
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache

    def test_envelope_output_is_a_response_envelope(self, capsys):
        from repro.service import from_json

        assert main(["figure1", "--no-cache", "--quiet", "--json"]) == 0
        response = from_json(capsys.readouterr().out)
        assert response.status == "ok"
        assert response.request_kind == "experiment"
        assert response.result["experiment"] == "figure1"

    def test_bench_envelope_output(self, capsys):
        assert main([
            "bench", "--circuit", "c432", "--scale", "0.3", "--envelope",
        ]) == 0
        from repro.service import from_json

        response = from_json(capsys.readouterr().out)
        assert "INPUT(" in response.result["text"]

    def test_attack_exit_code_nonzero_on_partial(self, capsys):
        # A 1-second-free budget cannot exist, but a tiny max-dips
        # equivalent is the time-limit zero: the attack goes partial
        # and the exit code says so.
        code = main([
            "attack", "--circuit", "c432", "--scheme", "sarlock",
            "--key-size", "4", "-N", "1", "--scale", "0.12",
            "--time-limit", "0.0", "--no-cache", "--quiet",
        ])
        assert code == 1
        assert "status=partial" in capsys.readouterr().out

    def test_bench_envelope_with_out_still_writes_file(self, capsys, tmp_path):
        from repro.service import from_json

        path = tmp_path / "c432.bench"
        assert main([
            "bench", "--circuit", "c432", "--scale", "0.3",
            "--out", str(path), "--json",
        ]) == 0
        assert path.exists() and "INPUT(" in path.read_text()
        # stdout carries only the envelope (machine-clean).
        response = from_json(capsys.readouterr().out)
        assert response.status == "ok"
