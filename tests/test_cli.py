"""CLI smoke tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("figure1", "table1", "table2", "attack", "bench", "ablation"):
            assert cmd in text

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1(a)" in out
        assert "equivalent = True" in out

    def test_table1_small(self, capsys):
        assert main([
            "table1", "--key-sizes", "3", "--efforts", "0,1",
            "--scale", "0.12",
        ]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_bench_emission(self, capsys, tmp_path):
        assert main(["bench", "--circuit", "c432", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "INPUT(" in out
        path = tmp_path / "x.bench"
        assert main([
            "bench", "--circuit", "c432", "--scale", "0.3", "--out", str(path)
        ]) == 0
        assert path.exists()

    def test_attack_sarlock(self, capsys):
        code = main([
            "attack", "--circuit", "c1908", "--scheme", "sarlock",
            "--key-size", "4", "-N", "1", "--scale", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "composition equivalent: True" in out
