"""CLI smoke tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("figure1", "table1", "table2", "attack", "bench",
                    "ablation", "defense", "cache"):
            assert cmd in text

    def test_runner_flags_on_experiment_commands(self):
        parser = build_parser()
        for cmd in ("figure1", "table1", "table2", "ablation", "defense"):
            args = parser.parse_args(
                [cmd] + (["both"] if cmd == "ablation" else [])
                + ["--jobs", "4", "--cache-dir", "/tmp/x", "--no-cache"]
            )
            assert args.jobs == 4
            assert args.cache_dir == "/tmp/x"
            assert args.no_cache

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1(a)" in out
        assert "equivalent = True" in out

    def test_table1_small(self, capsys):
        assert main([
            "table1", "--key-sizes", "3", "--efforts", "0,1",
            "--scale", "0.12",
        ]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_bench_emission(self, capsys, tmp_path):
        assert main(["bench", "--circuit", "c432", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "INPUT(" in out
        path = tmp_path / "x.bench"
        assert main([
            "bench", "--circuit", "c432", "--scale", "0.3", "--out", str(path)
        ]) == 0
        assert path.exists()

    def test_table1_warm_cache_is_identical(self, capsys, tmp_path):
        argv = [
            "table1", "--key-sizes", "3", "--efforts", "0,1",
            "--scale", "0.12", "--cache-dir", str(tmp_path), "--quiet",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert cold == warm
        assert (tmp_path / "table1_cell").is_dir()

    def test_defense_runs(self, capsys):
        assert main([
            "defense", "--circuit", "c1908", "--scale", "0.25",
            "--key-size", "4", "-N", "1", "--time-limit", "60",
            "--no-cache", "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "D1" in out and "entangled" in out

    def test_cache_info_and_clear(self, capsys, tmp_path):
        assert main([
            "figure1", "--cache-dir", str(tmp_path), "--quiet"
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "figure1: 1 artifact(s)" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 artifact(s)" in capsys.readouterr().out

    def test_cache_dir_naming_a_file_is_a_clean_error(self, tmp_path):
        not_a_dir = tmp_path / "file.txt"
        not_a_dir.write_text("x")
        with pytest.raises(SystemExit, match="not a directory"):
            main(["figure1", "--cache-dir", str(not_a_dir), "--quiet"])

    def test_attack_sarlock(self, capsys):
        code = main([
            "attack", "--circuit", "c1908", "--scheme", "sarlock",
            "--key-size", "4", "-N", "1", "--scale", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "composition equivalent: True" in out
