"""End-to-end integration tests: the paper's whole pipeline."""

import pytest

from repro.attacks.sat_attack import sat_attack
from repro.bench_circuits.iscas85 import iscas85_like
from repro.circuit.bench import format_bench, parse_bench
from repro.core.compose import verify_composition
from repro.core.multikey import multikey_attack
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.locking.sarlock import sarlock_lock
from repro.oracle.oracle import Oracle


class TestFullPipeline:
    """Lock -> serialize -> re-parse (the reverse-engineering step) ->
    attack -> compose -> CEC.  The locked netlist round-trips through
    `.bench` text because that is what an attacker actually has."""

    def test_sarlock_story(self):
        original = iscas85_like("c7552", scale=0.15)
        locked = sarlock_lock(original, key_size=6, seed=3)

        # The attacker reverse-engineers the locked netlist from GDSII;
        # we model that as a serialization round-trip.
        recovered_netlist = parse_bench(
            format_bench(locked.netlist), name="recovered"
        )
        from repro.locking.base import LockedCircuit

        attacker_view = LockedCircuit(
            netlist=recovered_netlist,
            key_inputs=list(locked.key_inputs),
            correct_key=locked.correct_key,  # unknown to attacker; for CEC only
            original_inputs=list(locked.original_inputs),
        )

        attack = multikey_attack(attacker_view, original, effort=2)
        assert attack.status == "ok"
        assert len(attack.keys) == 4
        assert verify_composition(
            attacker_view, attack.splitting_inputs, attack.keys, original
        ).equivalent

    def test_lut_story_with_speedup_shape(self):
        original = iscas85_like("c6288", scale=0.25)
        locked = lut_lock(original, LutModuleSpec.small(), seed=1)

        baseline = sat_attack(locked, Oracle(original), time_limit=120)
        assert baseline.status == "ok"

        attack = multikey_attack(
            locked, original, effort=3, time_limit_per_task=120
        )
        assert attack.status == "ok"
        assert verify_composition(
            locked, attack.splitting_inputs, attack.keys, original
        ).equivalent
        # The headline shape: sub-tasks see fewer DIPs than the baseline.
        assert max(attack.dips_per_task) <= baseline.num_dips

    def test_correct_key_among_recoverable(self):
        """Running the baseline on SARLock recovers exactly k*."""
        original = iscas85_like("c1908", scale=0.3)
        locked = sarlock_lock(original, key_size=5, seed=9)
        result = sat_attack(locked, Oracle(original))
        assert result.key_int == locked.correct_key_int

    @pytest.mark.parametrize("name", ["c432", "c499", "c3540"])
    def test_other_benchmarks_attackable(self, name):
        original = iscas85_like(name, scale=0.25)
        locked = sarlock_lock(original, key_size=4, seed=1)
        attack = multikey_attack(locked, original, effort=1)
        assert attack.status == "ok"
        assert verify_composition(
            locked, attack.splitting_inputs, attack.keys, original
        ).equivalent
