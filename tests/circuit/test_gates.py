"""Exhaustive single-bit and bit-parallel gate evaluation tests."""

import itertools

import pytest

from repro.circuit.gates import (
    GateType,
    eval_gate,
    eval_gate_const,
    inverted_type,
    valid_arity,
)

_REFERENCE = {
    GateType.AND: lambda bits: all(bits),
    GateType.OR: lambda bits: any(bits),
    GateType.NAND: lambda bits: not all(bits),
    GateType.NOR: lambda bits: not any(bits),
    GateType.XOR: lambda bits: sum(bits) % 2 == 1,
    GateType.XNOR: lambda bits: sum(bits) % 2 == 0,
    GateType.NOT: lambda bits: not bits[0],
    GateType.BUF: lambda bits: bits[0],
    GateType.MUX: lambda bits: bits[1] if bits[0] else bits[2],
}


@pytest.mark.parametrize("gtype", list(_REFERENCE))
def test_single_bit_matches_reference(gtype):
    arities = {GateType.NOT: [1], GateType.BUF: [1], GateType.MUX: [3]}.get(
        gtype, [1, 2, 3, 4]
    )
    for arity in arities:
        if not valid_arity(gtype, arity):
            continue
        for bits in itertools.product([0, 1], repeat=arity):
            expected = int(_REFERENCE[gtype](bits))
            assert eval_gate_const(gtype, bits) == expected, (gtype, bits)


def test_consts():
    assert eval_gate(GateType.CONST0, [], 0b1111) == 0
    assert eval_gate(GateType.CONST1, [], 0b1111) == 0b1111


def test_bit_parallel_lanes_are_independent():
    # 4 lanes of AND: lane i = a_i & b_i
    a, b, mask = 0b1100, 0b1010, 0b1111
    assert eval_gate(GateType.AND, [a, b], mask) == 0b1000
    assert eval_gate(GateType.NAND, [a, b], mask) == 0b0111
    assert eval_gate(GateType.XOR, [a, b], mask) == 0b0110
    assert eval_gate(GateType.MUX, [0b1100, a, b], mask) == 0b1110


def test_inversion_respects_mask():
    assert eval_gate(GateType.NOT, [0b0101], 0b1111) == 0b1010
    assert eval_gate(GateType.NOR, [0, 0], 0b11) == 0b11


@pytest.mark.parametrize(
    "gtype,arity,ok",
    [
        (GateType.NOT, 1, True),
        (GateType.NOT, 2, False),
        (GateType.MUX, 3, True),
        (GateType.MUX, 2, False),
        (GateType.AND, 1, True),
        (GateType.AND, 9, True),
        (GateType.CONST0, 0, True),
        (GateType.CONST0, 1, False),
    ],
)
def test_valid_arity(gtype, arity, ok):
    assert valid_arity(gtype, arity) is ok


def test_inverted_type_pairs():
    assert inverted_type(GateType.AND) is GateType.NAND
    assert inverted_type(GateType.NAND) is GateType.AND
    assert inverted_type(GateType.XOR) is GateType.XNOR
    assert inverted_type(GateType.MUX) is None


def test_unknown_gate_type_rejected():
    with pytest.raises(ValueError):
        eval_gate("FOO", [1], 1)  # type: ignore[arg-type]
