"""CEC tests: miters, counterexamples, interface checking."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit.equivalence import build_miter, check_equivalence
from repro.circuit.gates import GateType
from repro.circuit.netlist import Gate, Netlist, NetlistError
from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import evaluate, truth_table
from repro.synth.simplify import rewrite


def _with_flipped_gate(netlist: Netlist) -> Netlist:
    from repro.circuit.gates import inverted_type

    flipped = netlist.copy()
    for net, gate in flipped.gates.items():
        inv = inverted_type(gate.gtype)
        if inv is not None and net in flipped.outputs:
            flipped.gates[net] = Gate(net, inv, gate.inputs)
            return flipped
    # Fall back: invert the first output through a NOT chain rebuild.
    out = flipped.outputs[0]
    gate = flipped.gates[out]
    moved = out + "_orig"
    flipped.gates[moved] = Gate(moved, gate.gtype, gate.inputs)
    del flipped.gates[out]
    flipped.gates[out] = Gate(out, GateType.NOT, (moved,))
    return flipped


class TestCheckEquivalence:
    def test_identical_circuits(self, small_circuit):
        assert check_equivalence(small_circuit, small_circuit.copy()).equivalent

    def test_rewritten_circuit_still_equivalent(self, small_circuit):
        assert check_equivalence(small_circuit, rewrite(small_circuit)).equivalent

    def test_flipped_gate_not_equivalent(self, small_circuit):
        other = _with_flipped_gate(small_circuit)
        result = check_equivalence(small_circuit, other)
        assert not result.equivalent
        # Counterexample must actually distinguish the circuits.
        ya = evaluate(small_circuit, result.counterexample)
        yb = evaluate(other, result.counterexample)
        assert ya != yb

    def test_input_order_may_differ(self):
        a = Netlist("a")
        a.add_inputs(["x", "y"])
        a.add_gate("o", GateType.AND, ["x", "y"])
        a.set_outputs(["o"])
        b = Netlist("b")
        b.add_inputs(["y", "x"])
        b.add_gate("o", GateType.AND, ["y", "x"])
        b.set_outputs(["o"])
        assert check_equivalence(a, b).equivalent

    def test_different_inputs_rejected(self, small_circuit):
        other = small_circuit.copy()
        other.add_input("extra")
        with pytest.raises(NetlistError):
            check_equivalence(small_circuit, other)

    def test_different_outputs_rejected(self, small_circuit):
        other = small_circuit.copy()
        other.outputs = other.outputs[:-1]
        with pytest.raises(NetlistError):
            check_equivalence(small_circuit, other)

    def test_result_truthiness(self, small_circuit):
        assert bool(check_equivalence(small_circuit, small_circuit.copy()))

    def test_solver_stats_reported(self, small_circuit):
        result = check_equivalence(small_circuit, small_circuit.copy())
        assert result.solver_stats is not None
        assert result.solver_stats["solve_calls"] == 1


class TestBuildMiter:
    def test_miter_truth_table_is_zero_for_equivalent(self, small_circuit):
        miter = build_miter(small_circuit, small_circuit.copy())
        miter.validate()
        assert truth_table(miter)["miter_out"] == 0

    def test_miter_nonzero_for_different(self, small_circuit):
        other = _with_flipped_gate(small_circuit)
        miter = build_miter(small_circuit, other)
        assert truth_table(miter)["miter_out"] != 0


@given(seed=st.integers(0, 5_000))
def test_equivalence_agrees_with_truth_tables(seed):
    a = random_netlist(4, 15, seed=seed)
    b = random_netlist(4, 15, seed=seed + 1)
    count = min(len(a.outputs), len(b.outputs))
    a.set_outputs(a.outputs[:count])
    # Present b under a's interface: prefix all of b's internals, then
    # bridge a's output names onto b's outputs with BUF gates.
    renamed = b.renamed("bb_", keep_inputs=b.inputs)
    bridged_outputs = []
    for a_out, b_out in zip(a.outputs, renamed.outputs[:count]):
        renamed.gates[a_out] = Gate(a_out, GateType.BUF, (b_out,))
        bridged_outputs.append(a_out)
    renamed.set_outputs(bridged_outputs)
    renamed.validate()

    tt_a, tt_b = truth_table(a), truth_table(renamed)
    expected = all(tt_a[o] == tt_b[o] for o in a.outputs)
    assert check_equivalence(a, renamed).equivalent == expected
