"""Lane-backend tests: parity, resolution, chunking, degradation.

The lane contract is that ``lanes`` never changes a result, only
wall-clock: the numpy :class:`LaneProgram` is property-tested
bit-for-bit against the big-int path and the independent dict-walk
reference over random circuits (n-ary gates, MUX and CONST included),
and the resolution lever is tested for silent ``auto`` degradation vs
loud explicit-``numpy`` failure when numpy is missing.
"""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import lanes as lanes_mod
from repro.circuit.equivalence import check_equivalence
from repro.circuit.gates import GateType
from repro.circuit.lanes import (
    AUTO_MAX_LANES,
    AUTO_MIN_GATES,
    AUTO_MIN_STAGE_OPS,
    LaneProgram,
    available_lane_backends,
    default_lanes,
    numpy_available,
    preferred_chunk_lanes,
    resolve_lanes,
    set_default_lanes,
)
from repro.circuit.netlist import Netlist
from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import (
    random_patterns,
    simulate_reference,
)
from repro.oracle.oracle import Oracle

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy lane backend not installed"
)


@pytest.fixture(autouse=True)
def _clean_lever(monkeypatch):
    """Each test sees the stock lever: no REPRO_LANES, no process default."""
    monkeypatch.delenv("REPRO_LANES", raising=False)
    monkeypatch.setattr(lanes_mod, "_default_lanes", None)


def _hide_numpy(monkeypatch):
    monkeypatch.setattr(lanes_mod, "_numpy", None)
    monkeypatch.setattr(lanes_mod, "_numpy_probed", True)


def _nary_mux_netlist() -> Netlist:
    """Hand-built circuit hitting every kernel the binarizer emits."""
    netlist = Netlist("kernels")
    a, b, c, d, e = netlist.add_inputs(list("abcde"))
    netlist.add_gate("n1", GateType.NAND, [a, b, c, d, e])
    netlist.add_gate("n2", GateType.XNOR, [a, b, c, d, e])
    netlist.add_gate("n3", GateType.NOR, [c, d, e])
    netlist.add_gate("n4", GateType.MUX, [a, "n1", "n2"])
    netlist.add_gate("n5", GateType.CONST1, [])
    netlist.add_gate("n6", GateType.BUF, ["n4"])
    netlist.add_gate("n7", GateType.XOR, ["n6", "n5", "n3"])
    netlist.add_gate("n8", GateType.NOT, ["n7"])
    netlist.set_outputs(["n8", "n4", "n3"])
    netlist.validate()
    return netlist


@needs_numpy
class TestLaneProgramParity:
    @given(
        seed=st.integers(0, 10_000),
        width=st.sampled_from([1, 63, 64, 65, 129, 700]),
        allow_const=st.booleans(),
    )
    def test_eval_words_three_way(self, seed, width, allow_const):
        """numpy lanes == python lanes == simulate_reference."""
        netlist = random_netlist(6, 40, seed=seed, allow_const=allow_const)
        compiled = netlist.compile()
        stimuli = dict(
            zip(
                netlist.inputs,
                random_patterns(len(netlist.inputs), width, seed),
            )
        )
        mask = (1 << width) - 1
        words = [stimuli[net] & mask for net in compiled.inputs]
        python = compiled.eval_words(words, mask)
        numpy_ = compiled.lane_program().eval_words(words, mask)
        assert numpy_ == python
        reference = simulate_reference(netlist, stimuli, width)
        for net, slot in compiled.slot_of.items():
            assert python[slot] == reference[net]

    @given(seed=st.integers(0, 10_000))
    def test_eval_batch_parity(self, seed):
        netlist = random_netlist(5, 30, seed=seed, allow_const=True)
        compiled = netlist.compile()
        import random

        rng = random.Random(seed)
        patterns = [rng.getrandbits(5) for _ in range(70)]
        assert compiled.lane_program().eval_batch(
            patterns
        ) == compiled.eval_batch(patterns, lanes="python")

    def test_every_kernel_and_nary(self):
        netlist = _nary_mux_netlist()
        compiled = netlist.compile()
        width = 200
        mask = (1 << width) - 1
        words = random_patterns(len(netlist.inputs), width, seed=7)
        assert compiled.lane_program().eval_words(
            words, mask
        ) == compiled.eval_words(list(words), mask)

    def test_eval_outputs_wide_dispatch(self):
        netlist = _nary_mux_netlist()
        compiled = netlist.compile()
        width = 130
        words = random_patterns(len(netlist.inputs), width, seed=3)
        assert compiled.eval_outputs_wide(
            words, width, lanes="numpy"
        ) == compiled.eval_outputs_wide(words, width, lanes="python")

    def test_program_is_cached(self):
        compiled = _nary_mux_netlist().compile()
        assert compiled.lane_program() is compiled.lane_program()
        assert isinstance(compiled.lane_program(), LaneProgram)


class TestStageHint:
    """The pure-python shape hint that feeds ``auto`` resolution."""

    def test_wide_vs_deep_shapes(self):
        from repro.bench_circuits.generators import (
            keyed_match_plane,
            ripple_carry_adder,
        )

        plane = keyed_match_plane(terms=64, taps=16, bus=32).compile()
        ops, stages = plane.lane_stage_hint()
        assert ops / stages > 50  # opcode-homogeneous wide planes
        adder = ripple_carry_adder(32).compile()
        a_ops, a_stages = adder.lane_stage_hint()
        assert a_ops / a_stages < 8  # deep carry chain, tiny stages
        assert plane.lane_stage_hint() is plane.lane_stage_hint()  # cached

    @needs_numpy
    def test_hint_tracks_real_stage_count(self):
        compiled = _nary_mux_netlist().compile()
        ops, stages = compiled.lane_stage_hint()
        real = len(compiled.lane_program()._stages)
        # The hint mirrors the binarizer (n-ary folds included); it is
        # allowed to drift a little on fold levels, not by shape class.
        assert abs(stages - real) <= max(2, real // 4)
        assert ops >= compiled.num_gates - sum(
            1 for g in compiled.gate_types if g.name == "BUF"
        )


class TestResolution:
    def test_default_is_auto(self):
        assert default_lanes() == "auto"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "python")
        assert default_lanes() == "python"
        assert resolve_lanes(None) == "python"

    def test_set_default_lanes(self):
        set_default_lanes("python")
        assert default_lanes() == "python"
        set_default_lanes(None)
        assert default_lanes() == "auto"
        with pytest.raises(ValueError, match="unknown lane backend"):
            set_default_lanes("gpu")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="unknown lane backend"):
            resolve_lanes("cupy")

    def test_python_always_resolves(self):
        assert resolve_lanes("python") == "python"
        assert "python" in available_lane_backends()

    @needs_numpy
    def test_auto_is_shape_aware(self):
        """numpy only for big, wide-shallow circuits at narrow widths."""
        wide_shallow = dict(
            num_gates=4 * AUTO_MIN_GATES,
            stages=(4 * AUTO_MIN_GATES) // (2 * AUTO_MIN_STAGE_OPS),
        )
        assert (
            resolve_lanes("auto", width=AUTO_MAX_LANES, **wide_shallow)
            == "numpy"
        )
        # Too wide a sweep: gathers fall out of cache, big-ints stream.
        assert (
            resolve_lanes("auto", width=AUTO_MAX_LANES + 1, **wide_shallow)
            == "python"
        )
        # Deep shape (many near-empty stages): python at any size.
        assert (
            resolve_lanes(
                "auto",
                num_gates=4 * AUTO_MIN_GATES,
                width=64,
                stages=4 * AUTO_MIN_GATES // 20,
            )
            == "python"
        )
        # Tiny circuit: python even when perfectly wide.
        assert (
            resolve_lanes(
                "auto", num_gates=AUTO_MIN_GATES - 1, width=64, stages=1
            )
            == "python"
        )
        # Unknown shape stays on the never-a-regression backend.
        assert resolve_lanes("auto") == "python"
        assert resolve_lanes("auto", num_gates=1 << 20, width=64) == "python"

    def test_auto_degrades_silently_without_numpy(self, monkeypatch):
        _hide_numpy(monkeypatch)
        assert available_lane_backends() == ("python",)
        assert resolve_lanes(
            "auto", num_gates=1 << 20, width=64, stages=4
        ) == ("python")

    def test_explicit_numpy_raises_without_numpy(self, monkeypatch):
        _hide_numpy(monkeypatch)
        with pytest.raises(ModuleNotFoundError, match="lanes='numpy'"):
            resolve_lanes("numpy")

    def test_chunk_sizes_per_backend(self):
        # Each backend chunks at its measured throughput plateau; the
        # numpy plateau ends earlier (stage gathers fall out of cache)
        # and must never chunk wider than the python path does.
        assert 64 <= preferred_chunk_lanes("numpy") <= preferred_chunk_lanes(
            "python"
        )
        assert preferred_chunk_lanes("numpy") >= AUTO_MAX_LANES


class TestOracleChunking:
    def test_chunked_batch_matches_unchunked(self, monkeypatch):
        netlist = random_netlist(6, 40, seed=11)
        patterns = list(range(64))
        whole = Oracle(netlist).query_batch(patterns)
        monkeypatch.setitem(lanes_mod.PREFERRED_CHUNK_LANES, "python", 5)
        oracle = Oracle(netlist, lanes="python")
        assert oracle.query_batch(patterns) == whole
        # Accounting stays one query per pattern, chunking or not.
        assert oracle.query_count == len(patterns)

    @needs_numpy
    def test_backends_agree_through_oracle(self):
        netlist = random_netlist(6, 40, seed=12, allow_const=True)
        patterns = list(range(60))
        assert Oracle(netlist, lanes="numpy").query_batch(
            patterns
        ) == Oracle(netlist, lanes="python").query_batch(patterns)

    def test_query_vector_missing_input_message(self):
        netlist = random_netlist(4, 10, seed=1)
        oracle = Oracle(netlist)
        with pytest.raises(KeyError, match="missing value for primary input"):
            oracle.query_vector({netlist.inputs[0]: 1}, width=2)


class TestEvaluatePattern:
    """Satellite: evaluate_pattern shares the scratch/normalize path."""

    @given(seed=st.integers(0, 5_000), pattern=st.integers(0, 63))
    def test_matches_eval_single(self, seed, pattern):
        netlist = random_netlist(6, 30, seed=seed, allow_const=True)
        compiled = netlist.compile()
        bits = [(pattern >> j) & 1 for j in range(6)]
        single = compiled.eval_single(bits)
        packed = compiled.evaluate_pattern(pattern)
        for k, net in enumerate(compiled.outputs):
            assert (packed >> k) & 1 == single[net]

    def test_repeated_calls_reuse_state(self):
        compiled = _nary_mux_netlist().compile()
        first = [compiled.evaluate_pattern(p) for p in range(32)]
        second = [compiled.evaluate_pattern(p) for p in range(32)]
        assert first == second


class TestPresimPrefilter:
    def _pair(self):
        netlist = random_netlist(6, 40, seed=21)
        twin = random_netlist(6, 40, seed=21)
        return netlist, twin

    def test_equivalent_pair_falls_through_to_sat(self):
        a, b = self._pair()
        result = check_equivalence(a, b, presim_width=256)
        assert result.equivalent
        # Fell through to the proof: solver stats are present.
        assert result.solver_stats is not None

    def test_inequivalent_pair_short_circuits(self):
        a = _nary_mux_netlist()
        b = _nary_mux_netlist()
        # Flip one gate: NOR -> OR differs on most input patterns.
        gate = b.gates["n3"]
        del b.gates["n3"]
        b.add_gate("n3", GateType.OR, list(gate.inputs))
        result = check_equivalence(a, b, presim_width=512)
        assert not result.equivalent
        # Pre-simulation found it: no SAT proof ran, and the reported
        # counterexample must be real.
        assert result.solver_stats is None
        cex = result.counterexample
        ref_a = simulate_reference(a, cex)
        ref_b = simulate_reference(b, cex)
        assert any(ref_a[net] != ref_b[net] for net in a.outputs)
        assert result.outputs_a != result.outputs_b

    def test_default_is_sat_only(self):
        a, b = self._pair()
        assert check_equivalence(a, b).solver_stats is not None
