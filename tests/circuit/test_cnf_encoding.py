"""Property test: the Tseitin netlist encoding agrees with simulation."""

from hypothesis import given, strategies as st

from repro.circuit.cnf import encode_netlist
from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import evaluate
from repro.sat.cnf import CNF


@given(
    seed=st.integers(0, 10_000),
    pattern=st.integers(0, 31),
    allow_const=st.booleans(),
)
def test_encoding_matches_simulation(seed, pattern, allow_const):
    """Force the inputs in CNF; the unique model must match simulation."""
    netlist = random_netlist(5, 30, seed=seed, allow_const=allow_const)
    enc = encode_netlist(netlist)
    cnf = enc.cnf
    for j, net in enumerate(netlist.inputs):
        cnf.add_clause([enc.lit(net, bool((pattern >> j) & 1))])
    solver = cnf.to_solver()
    assert solver.solve()
    expected = evaluate(
        netlist, {net: (pattern >> j) & 1 for j, net in enumerate(netlist.inputs)}
    )
    for out in netlist.outputs:
        assert solver.model_value(enc.var_of[out]) == bool(expected[out])


@given(seed=st.integers(0, 10_000))
def test_wrong_output_is_unsat(seed):
    """Forcing any output to the wrong value must be unsatisfiable."""
    netlist = random_netlist(4, 20, seed=seed)
    enc = encode_netlist(netlist)
    cnf = enc.cnf
    pattern = seed % 16
    bits = {net: (pattern >> j) & 1 for j, net in enumerate(netlist.inputs)}
    for net, bit in bits.items():
        cnf.add_clause([enc.lit(net, bool(bit))])
    out = netlist.outputs[0]
    expected = evaluate(netlist, bits)[out]
    cnf.add_clause([enc.lit(out, not expected)])
    assert cnf.to_solver().solve() is False


def test_share_map_reuses_variables():
    netlist = random_netlist(3, 8, seed=1)
    cnf = CNF()
    first = encode_netlist(netlist, cnf)
    shared = {net: first.var_of[net] for net in netlist.inputs}
    second = encode_netlist(netlist, cnf, share=shared)
    for net in netlist.inputs:
        assert first.var_of[net] == second.var_of[net]
    for net in netlist.gates:
        assert first.var_of[net] != second.var_of[net]


def test_lit_helper_polarity():
    netlist = random_netlist(2, 3, seed=0)
    enc = encode_netlist(netlist)
    var = enc.var_of[netlist.inputs[0]]
    assert enc.lit(netlist.inputs[0], True) == var
    assert enc.lit(netlist.inputs[0], False) == -var
