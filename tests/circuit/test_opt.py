"""Optimization-pass tests: parity, provenance, idempotence, lever.

The opt contract mirrors the lane contract: optimization never changes
a result, only circuit size.  Every pass and the full pipeline are
property-tested bit-for-bit against the unoptimized compiled circuit
on random netlists (n-ary gates, MUX and CONST included) and on locked
circuits (XOR locks and SARLock comparators — the shapes the miter
actually sees), across the python big-int path and, when installed,
the numpy lane backend.  Provenance is checked as a claim about
values: every ``("slot", new)`` image carries the original slot's word
and every ``("const", b)`` image names a slot the original circuit
held constant.
"""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import opt as opt_mod
from repro.circuit.gates import GateType
from repro.circuit.lanes import numpy_available
from repro.circuit.netlist import Netlist
from repro.circuit.opt import (
    OPT_LEVELS,
    PASS_NAMES,
    default_opt,
    optimize_compiled,
    resolve_opt,
    run_pass,
    set_default_opt,
)
from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import random_patterns
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy lane backend not installed"
)


@pytest.fixture(autouse=True)
def _clean_lever(monkeypatch):
    """Each test sees the stock lever: no REPRO_OPT, no process default."""
    monkeypatch.delenv("REPRO_OPT", raising=False)
    monkeypatch.setattr(opt_mod, "_default_opt", None)


def _words_for(compiled, width: int, seed: int) -> tuple[list[int], int]:
    mask = (1 << width) - 1
    words = [
        w & mask
        for w in random_patterns(len(compiled.inputs), width, seed)
    ]
    return words, mask


def _output_words(compiled, words, mask) -> list[int]:
    values = compiled.eval_words(list(words), mask)
    return [values[s] for s in compiled.output_slots]


def _assert_parity(original, optimized, width: int = 128, seed: int = 0):
    """Interface identity + bit-for-bit output parity on random words."""
    assert optimized.inputs == original.inputs
    assert optimized.outputs == original.outputs
    words, mask = _words_for(original, width, seed)
    assert _output_words(optimized, words, mask) == _output_words(
        original, words, mask
    )


def _redundant_netlist() -> Netlist:
    """Hand-built circuit with one target for every pass.

    ``sweep_me`` folds under constant propagation, the BUF/NOT chains
    collapse under ``chains``, ``and2`` is a commuted duplicate of
    ``and1`` for ``strash``, and ``dangle`` feeds no primary output so
    ``coi`` drops it.  After the full pipeline ``out2`` (XOR of the
    merged duplicates) becomes the constant 0.
    """
    netlist = Netlist("redundant")
    a, b, c = netlist.add_inputs(["a", "b", "c"])
    netlist.add_gate("one", GateType.CONST1, [])
    netlist.add_gate("sweep_me", GateType.AND, [a, "one"])
    netlist.add_gate("buf1", GateType.BUF, ["sweep_me"])
    netlist.add_gate("buf2", GateType.BUF, ["buf1"])
    netlist.add_gate("inv1", GateType.NOT, [b])
    netlist.add_gate("inv2", GateType.NOT, ["inv1"])
    netlist.add_gate("and1", GateType.AND, [a, b])
    netlist.add_gate("and2", GateType.AND, [b, a])
    netlist.add_gate("dangle", GateType.XOR, [c, "and1"])
    netlist.add_gate("out1", GateType.OR, ["buf2", "inv2"])
    netlist.add_gate("out2", GateType.XOR, ["and1", "and2"])
    netlist.set_outputs(["out1", "out2"])
    netlist.validate()
    return netlist


class TestPassParity:
    @given(
        seed=st.integers(0, 10_000),
        name=st.sampled_from(PASS_NAMES),
        allow_const=st.booleans(),
    )
    def test_single_pass_preserves_outputs(self, seed, name, allow_const):
        compiled = random_netlist(
            6, 40, seed=seed, allow_const=allow_const
        ).compile()
        result = run_pass(compiled, name)
        assert result.passes == (name,)
        assert result.gates_removed >= 0
        _assert_parity(compiled, result.compiled, seed=seed)

    @given(
        seed=st.integers(0, 10_000),
        level=st.sampled_from(("light", "full")),
        allow_const=st.booleans(),
    )
    def test_pipeline_preserves_outputs(self, seed, level, allow_const):
        compiled = random_netlist(
            6, 40, seed=seed, allow_const=allow_const
        ).compile()
        result = optimize_compiled(compiled, level)
        assert result.level == level
        _assert_parity(compiled, result.compiled, seed=seed)

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_pipeline_preserves_truth_table(self, seed):
        """Exhaustive parity: every input pattern, not a sample."""
        compiled = random_netlist(6, 45, seed=seed, allow_const=True).compile()
        optimized = optimize_compiled(compiled, "full").compiled
        assert (
            optimized.truth_table_words() == compiled.truth_table_words()
        )

    @pytest.mark.parametrize("scheme", ["xor", "sarlock"])
    @pytest.mark.parametrize("seed", [1, 5])
    def test_locked_circuit_parity(self, scheme, seed):
        """The shapes the miter sees: key inputs are ordinary inputs."""
        carrier = random_netlist(6, 40, seed=seed)
        if scheme == "xor":
            locked = xor_lock(carrier, key_size=4, seed=seed)
        else:
            locked = sarlock_lock(carrier, key_size=4, seed=seed)
        compiled = locked.netlist.compile()
        for level in ("light", "full"):
            result = optimize_compiled(compiled, level)
            _assert_parity(compiled, result.compiled, width=256, seed=seed)

    @needs_numpy
    @given(seed=st.integers(0, 5_000))
    def test_numpy_lane_parity_on_optimized(self, seed):
        """Optimized circuits evaluate identically on both lane backends."""
        compiled = random_netlist(6, 40, seed=seed, allow_const=True).compile()
        optimized = optimize_compiled(compiled, "full").compiled
        words, mask = _words_for(optimized, 128, seed)
        python = optimized.eval_words(list(words), mask)
        assert optimized.lane_program().eval_words(words, mask) == python


class TestIdempotence:
    @given(seed=st.integers(0, 10_000), level=st.sampled_from(("light", "full")))
    def test_second_run_is_identity(self, seed, level):
        compiled = random_netlist(6, 40, seed=seed, allow_const=True).compile()
        once = optimize_compiled(compiled, level)
        twice = optimize_compiled(once.compiled, level)
        assert twice.compiled == once.compiled  # structural equality
        assert twice.gates_removed == 0

    def test_fixpoint_on_redundant_circuit(self):
        compiled = _redundant_netlist().compile()
        once = optimize_compiled(compiled, "full")
        assert once.gates_removed > 0
        again = optimize_compiled(once.compiled, "full")
        assert again.compiled == once.compiled


class TestProvenance:
    @given(seed=st.integers(0, 10_000), level=st.sampled_from(("light", "full")))
    def test_images_carry_original_values(self, seed, level):
        compiled = random_netlist(6, 40, seed=seed, allow_const=True).compile()
        result = optimize_compiled(compiled, level)
        assert set(result.provenance) == set(range(compiled.num_slots))
        words, mask = _words_for(compiled, 96, seed)
        original = compiled.eval_words(list(words), mask)
        optimized = result.compiled.eval_words(list(words), mask)
        for slot in range(compiled.num_slots):
            image = result.slot_image(slot)
            if image[0] == "slot":
                assert optimized[image[1]] == original[slot]
            elif image[0] == "const":
                assert original[slot] == (mask if image[1] else 0)
            else:
                assert image == ("dropped",)

    @given(seed=st.integers(0, 5_000))
    def test_outputs_never_dropped(self, seed):
        compiled = random_netlist(6, 40, seed=seed, allow_const=True).compile()
        result = optimize_compiled(compiled, "full")
        for slot in compiled.output_slots:
            assert result.slot_image(slot)[0] in ("slot", "const")

    def test_folded_output_reports_const(self):
        compiled = _redundant_netlist().compile()
        result = optimize_compiled(compiled, "full")
        assert result.slot_image(compiled.slot_of["out2"]) == ("const", 0)


class TestPassTargets:
    """Each pass removes the redundancy it was built for."""

    def test_sweep_folds_constant_fanin(self):
        compiled = _redundant_netlist().compile()
        result = run_pass(compiled, "sweep")
        assert result.stats["sweep"] >= 1
        assert result.slot_image(compiled.slot_of["sweep_me"]) == (
            "slot",
            compiled.slot_of["a"],
        )

    def test_chains_collapse_buf_and_not_pairs(self):
        compiled = _redundant_netlist().compile()
        result = run_pass(compiled, "chains")
        assert result.stats["chains"] >= 3  # buf1, buf2, inv2

    def test_strash_merges_commuted_duplicates(self):
        compiled = _redundant_netlist().compile()
        result = run_pass(compiled, "strash")
        assert result.stats["strash"] >= 1
        image1 = result.slot_image(compiled.slot_of["and1"])
        image2 = result.slot_image(compiled.slot_of["and2"])
        assert image1 == image2

    def test_coi_drops_dangling_cone(self):
        compiled = _redundant_netlist().compile()
        result = run_pass(compiled, "coi")
        assert result.slot_image(compiled.slot_of["dangle"]) == ("dropped",)

    def test_full_pipeline_compounds(self):
        compiled = _redundant_netlist().compile()
        result = optimize_compiled(compiled, "full")
        # out1 == OR(a, b); out2 == const 0 — nearly everything folds.
        assert result.compiled.num_gates <= 3
        assert result.gates_before == compiled.num_gates


class TestOffIdentity:
    def test_off_is_the_same_object(self):
        compiled = random_netlist(5, 25, seed=3).compile()
        result = optimize_compiled(compiled, "off")
        assert result.compiled is compiled
        assert result.passes == ()
        assert all(
            result.slot_image(s) == ("slot", s)
            for s in range(compiled.num_slots)
        )

    def test_compiled_optimized_off(self):
        compiled = random_netlist(5, 25, seed=4).compile()
        assert compiled.optimized("off").compiled is compiled


class TestLever:
    def test_default_is_auto(self):
        assert default_opt() == "auto"
        assert resolve_opt(None) == "full"
        assert resolve_opt("auto") == "full"

    def test_levels_roster(self):
        assert OPT_LEVELS == ("off", "light", "full")
        for level in OPT_LEVELS:
            assert resolve_opt(level) == level

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPT", "light")
        assert default_opt() == "light"
        assert resolve_opt(None) == "light"

    def test_set_default_opt(self):
        set_default_opt("off")
        assert default_opt() == "off"
        assert resolve_opt(None) == "off"
        set_default_opt(None)
        assert default_opt() == "auto"
        with pytest.raises(ValueError, match="unknown opt level"):
            set_default_opt("max")

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="unknown opt level"):
            resolve_opt("aggressive")

    def test_unknown_pass_rejected(self):
        compiled = random_netlist(4, 10, seed=1).compile()
        with pytest.raises(ValueError, match="unknown pass"):
            run_pass(compiled, "retime")


class TestCaching:
    def test_one_result_per_level(self):
        compiled = random_netlist(6, 40, seed=9).compile()
        assert compiled.optimized("full") is compiled.optimized("full")
        assert compiled.optimized("light") is not compiled.optimized("full")
        # "auto" and the process default resolve into the same cache slot.
        assert compiled.optimized("auto") is compiled.optimized("full")
        assert compiled.optimized(None) is compiled.optimized("full")

    def test_tainted_slots_cached_per_seed_set(self):
        compiled = random_netlist(6, 40, seed=11).compile()
        seeds = [compiled.slot_of[compiled.inputs[0]]]
        first = compiled.tainted_slots(seeds)
        # A fresh list comes back each call: mutation cannot poison the
        # cache, and unordered/duplicated seed sets share one entry.
        second = compiled.tainted_slots(seeds)
        assert second == first
        assert second is not first
        second[0] = not second[0]
        assert compiled.tainted_slots(seeds) == first
        shuffled = compiled.tainted_slots(list(reversed(seeds * 2)))
        assert shuffled == first
        assert len(compiled._tainted_cache) == 1
