"""Structural analysis tests: levels, cones, key-influence ranking."""

from repro.circuit.analysis import (
    cone_statistics,
    depth,
    fanin_cone,
    fanin_support,
    fanout_cone,
    key_controlled_gates,
    levelize,
    rank_inputs_by_key_influence,
)
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist


def _diamond() -> Netlist:
    #   a   b    k
    #    \ / \  /
    #     m    n      m = AND(a,b); n = XOR(b,k)
    #      \  /
    #       y         y = OR(m,n)
    n = Netlist("diamond")
    n.add_inputs(["a", "b", "k"])
    n.add_gate("m", GateType.AND, ["a", "b"])
    n.add_gate("n", GateType.XOR, ["b", "k"])
    n.add_gate("y", GateType.OR, ["m", "n"])
    n.set_outputs(["y"])
    return n


class TestLevels:
    def test_levelize(self):
        levels = levelize(_diamond())
        assert levels["a"] == 0
        assert levels["m"] == 1
        assert levels["y"] == 2

    def test_depth(self):
        assert depth(_diamond()) == 2

    def test_empty_netlist_depth(self):
        n = Netlist()
        n.add_input("a")
        assert depth(n) == 0


class TestCones:
    def test_fanin_cone(self):
        assert fanin_cone(_diamond(), "m") == {"m", "a", "b"}
        assert fanin_cone(_diamond(), "y") == {"y", "m", "n", "a", "b", "k"}

    def test_fanin_support(self):
        assert fanin_support(_diamond(), "n") == {"b", "k"}

    def test_fanout_cone(self):
        assert fanout_cone(_diamond(), "a") == {"m", "y"}
        assert fanout_cone(_diamond(), "b") == {"m", "n", "y"}
        assert fanout_cone(_diamond(), "y") == set()

    def test_cone_statistics(self):
        stats = cone_statistics(_diamond())
        assert stats["y"] == {"cone_gates": 3, "support": 3}


class TestKeyInfluence:
    def test_key_controlled_gates(self):
        controlled = key_controlled_gates(_diamond(), ["k"])
        assert controlled == {"n", "y"}

    def test_no_keys_means_nothing_controlled(self):
        assert key_controlled_gates(_diamond(), []) == set()

    def test_all_inputs_taint_everything(self):
        n = _diamond()
        assert key_controlled_gates(n, n.inputs) == {"m", "n", "y"}

    def test_ranking_prefers_influential_input(self):
        # b reaches n and y (2 controlled gates); a reaches only y.
        ranked = rank_inputs_by_key_influence(_diamond(), ["k"])
        assert ranked[0][0] == "b"
        assert ranked[0][1] == 2
        counts = dict(ranked)
        assert counts["a"] == 1

    def test_ranking_deterministic_tie_break(self):
        n = Netlist()
        n.add_inputs(["a", "b", "k"])
        n.add_gate("x", GateType.AND, ["a", "k"])
        n.add_gate("y", GateType.AND, ["b", "k"])
        n.set_outputs(["x", "y"])
        ranked = rank_inputs_by_key_influence(n, ["k"])
        assert [r[0] for r in ranked] == ["a", "b"]  # tie -> input order

    def test_explicit_candidates(self):
        ranked = rank_inputs_by_key_influence(
            _diamond(), ["k"], candidates=["a"]
        )
        assert ranked == [("a", 1)]
