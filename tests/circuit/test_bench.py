"""`.bench` parser/writer tests."""

import pytest

from repro.circuit.bench import format_bench, parse_bench, read_bench_file, write_bench_file
from repro.circuit.gates import GateType
from repro.circuit.netlist import NetlistError
from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import truth_table


class TestParse:
    def test_simple(self):
        text = """
        # a comment
        INPUT(a)
        INPUT(b)
        OUTPUT(y)
        y = NAND(a, b)
        """
        n = parse_bench(text)
        assert n.inputs == ["a", "b"]
        assert n.outputs == ["y"]
        assert n.gates["y"].gtype is GateType.NAND

    def test_buff_alias(self):
        n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
        assert n.gates["y"].gtype is GateType.BUF

    def test_inline_comment(self):
        n = parse_bench("INPUT(a)  # the input\nOUTPUT(a)\n")
        assert n.inputs == ["a"]

    def test_case_insensitive_decls(self):
        n = parse_bench("input(a)\noutput(y)\ny = not(a)\n")
        assert n.gates["y"].gtype is GateType.NOT

    def test_mux_extension(self):
        n = parse_bench(
            "INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX(s, a, b)\n"
        )
        assert n.gates["y"].gtype is GateType.MUX

    def test_const_extension(self):
        n = parse_bench("INPUT(a)\nOUTPUT(y)\nk = CONST1()\ny = AND(a, k)\n")
        assert n.gates["k"].gtype is GateType.CONST1

    def test_dff_rejected(self):
        with pytest.raises(NetlistError, match="DFF"):
            parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(NetlistError, match="unknown gate"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(NetlistError, match="cannot parse"):
            parse_bench("INPUT(a)\nOUTPUT(a)\nwhat is this\n")

    def test_undriven_output_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nOUTPUT(y)\n")


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_function_preserved(self, seed):
        n = random_netlist(5, 25, seed=seed)
        back = parse_bench(format_bench(n), name=n.name)
        assert back.inputs == n.inputs
        assert back.outputs == n.outputs
        tt_a, tt_b = truth_table(n), truth_table(back)
        assert all(tt_a[o] == tt_b[o] for o in n.outputs)

    def test_header_comments(self):
        n = random_netlist(3, 5, seed=9)
        text = format_bench(n, header_comments=("generated for test",))
        assert "# generated for test" in text
        parse_bench(text)

    def test_file_io(self, tmp_path):
        n = random_netlist(4, 10, seed=2)
        path = tmp_path / "c.bench"
        write_bench_file(n, str(path))
        back = read_bench_file(str(path))
        assert back.name == "c.bench"
        assert truth_table(back) == {
            k: v for k, v in truth_table(n).items()
        }
