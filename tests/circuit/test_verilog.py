"""Verilog writer tests."""

import re

from repro.bench_circuits.generators import ripple_carry_adder
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.circuit.random_circuits import random_netlist
from repro.circuit.verilog import format_verilog, write_verilog_file


class TestFormat:
    def test_module_structure(self):
        n = ripple_carry_adder(2)
        text = format_verilog(n)
        assert text.startswith("module rca2 (")
        assert text.rstrip().endswith("endmodule")
        assert "input a0;" in text
        assert "output sum0;" in text

    def test_primitives_emitted(self):
        n = Netlist("prims")
        n.add_inputs(["a", "b"])
        n.add_gate("x", GateType.NAND, ["a", "b"])
        n.add_gate("y", GateType.XOR, ["a", "x"])
        n.set_outputs(["y"])
        text = format_verilog(n)
        assert re.search(r"nand g\d+ \(x, a, b\);", text)
        assert re.search(r"xor g\d+ \(y, a, x\);", text)

    def test_mux_and_consts_as_assign(self):
        n = Netlist("mx")
        n.add_inputs(["s", "a", "b"])
        n.add_gate("k", GateType.CONST1, [])
        n.add_gate("y", GateType.MUX, ["s", "a", "b"])
        n.add_gate("z", GateType.AND, ["y", "k"])
        n.set_outputs(["z"])
        text = format_verilog(n)
        assert "assign y = s ? a : b;" in text
        assert "assign k = 1'b1;" in text

    def test_wire_declarations_exclude_ports(self):
        n = ripple_carry_adder(2)
        text = format_verilog(n)
        assert "wire sum0;" not in text
        assert "wire a0;" not in text

    def test_custom_module_name(self):
        n = random_netlist(3, 5, seed=1)
        assert "module my_top (" in format_verilog(n, module_name="my_top")

    def test_weird_net_names_escaped(self):
        n = Netlist("weird")
        n.add_input("a[0]")
        n.add_gate("y.z", GateType.NOT, ["a[0]"])
        n.set_outputs(["y.z"])
        text = format_verilog(n)
        assert "\\a[0] " in text
        assert "\\y.z " in text

    def test_every_gate_represented(self):
        n = random_netlist(5, 30, seed=4)
        text = format_verilog(n)
        body = [l for l in text.splitlines() if "g" in l or "assign" in l]
        structural = sum(
            1
            for line in text.splitlines()
            if re.match(r"\s+(and|or|nand|nor|xor|xnor|not|buf|assign)\b", line)
        )
        assert structural == n.num_gates

    def test_file_output(self, tmp_path):
        n = random_netlist(3, 8, seed=2)
        path = tmp_path / "out.v"
        write_verilog_file(n, str(path))
        assert path.read_text().startswith("module")
