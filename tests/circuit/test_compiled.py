"""Compiled circuit IR tests.

Seeded property tests assert compiled-vs-legacy parity on random
circuits covering every gate family the generator emits (n-ary
AND/OR/XOR trees, MUX, BUF/NOT chains, CONST gates), plus the compile
cache's invalidation rules and the content-hash identity used for
result-cache keys.
"""

import pytest
from hypothesis import given, strategies as st

from repro.circuit.compiled import CompiledCircuit, CompileError
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import (
    evaluate,
    simulate,
    simulate_reference,
    truth_table,
)


class TestParity:
    @given(
        seed=st.integers(0, 10_000),
        width=st.sampled_from([1, 7, 64]),
        allow_const=st.booleans(),
    )
    def test_simulate_matches_reference(self, seed, width, allow_const):
        netlist = random_netlist(6, 40, seed=seed, allow_const=allow_const)
        from repro.circuit.simulator import random_patterns

        stimuli = dict(
            zip(netlist.inputs, random_patterns(len(netlist.inputs), width, seed))
        )
        assert simulate(netlist, stimuli, width) == simulate_reference(
            netlist, stimuli, width
        )

    @given(seed=st.integers(0, 10_000), allow_const=st.booleans())
    def test_truth_table_matches_reference(self, seed, allow_const):
        netlist = random_netlist(5, 30, seed=seed, allow_const=allow_const)
        reference = simulate_reference(
            netlist,
            dict(
                zip(
                    netlist.inputs,
                    __import__(
                        "repro.circuit.compiled", fromlist=["exhaustive_words"]
                    ).exhaustive_words(len(netlist.inputs)),
                )
            ),
            width=1 << len(netlist.inputs),
        )
        tt = truth_table(netlist)
        assert tt == {net: reference[net] for net in netlist.outputs}

    @given(seed=st.integers(0, 10_000), pattern=st.integers(0, 63))
    def test_evaluate_matches_reference(self, seed, pattern):
        netlist = random_netlist(6, 35, seed=seed)
        bits = {
            net: (pattern >> j) & 1 for j, net in enumerate(netlist.inputs)
        }
        reference = simulate_reference(netlist, bits, width=1)
        assert evaluate(netlist, bits) == {
            net: reference[net] for net in netlist.outputs
        }

    def test_pinned_constant_inputs(self):
        """Constant words on inputs flow through like any stimulus."""
        n = Netlist("pinned")
        n.add_inputs(["a", "b", "sel"])
        n.add_gate("m", GateType.MUX, ["sel", "a", "b"])
        n.add_gate("inv", GateType.NOT, ["m"])
        n.add_gate("buf", GateType.BUF, ["inv"])
        n.set_outputs(["buf"])
        for stim in ({"a": 1, "b": 0, "sel": 0}, {"a": 1, "b": 0, "sel": 1}):
            assert simulate(n, stim) == simulate_reference(n, stim)

    def test_unary_and_nary_arities(self):
        """AND/XOR at arity 1 and > 2 lower to the right opcodes."""
        n = Netlist("arity")
        n.add_inputs(["a", "b", "c", "d"])
        n.add_gate("u", GateType.AND, ["a"])  # unary AND == BUF
        n.add_gate("v", GateType.NAND, ["b"])  # unary NAND == NOT
        n.add_gate("w", GateType.XOR, ["a", "b", "c", "d"])
        n.add_gate("x", GateType.NOR, ["u", "v", "w"])
        n.set_outputs(["u", "v", "w", "x"])
        for pattern in range(16):
            bits = {net: (pattern >> j) & 1 for j, net in enumerate(n.inputs)}
            assert simulate(n, bits) == simulate_reference(n, bits)


class TestCompileSeam:
    def test_compile_is_cached(self, small_circuit):
        assert small_circuit.compile() is small_circuit.compile()

    def test_add_gate_invalidates(self, small_circuit):
        first = small_circuit.compile()
        small_circuit.add_gate("extra", GateType.NOT, [small_circuit.inputs[0]])
        second = small_circuit.compile()
        assert second is not first
        assert "extra" in second.slot_of

    def test_set_outputs_invalidates(self, small_circuit):
        first = small_circuit.compile()
        small_circuit.set_outputs(small_circuit.outputs[:1])
        assert small_circuit.compile() is not first

    def test_explicit_invalidate(self, small_circuit):
        first = small_circuit.compile()
        small_circuit.invalidate_compiled()
        assert small_circuit.compile() is not first

    def test_copy_does_not_share_cache(self, small_circuit):
        first = small_circuit.compile()
        dup = small_circuit.copy()
        assert dup.compile() is not first

    def test_topological_order_reuses_compiled_order(self, small_circuit):
        compiled = small_circuit.compile()
        order = small_circuit.topological_order()
        assert order == list(compiled.gates)

    def test_undriven_fanin_rejected(self):
        n = Netlist("broken")
        n.add_input("a")
        n.gates["g"] = __import__(
            "repro.circuit.netlist", fromlist=["Gate"]
        ).Gate("g", GateType.AND, ("a", "ghost"))
        n.set_outputs(["g"])
        with pytest.raises(CompileError):
            CompiledCircuit(n)

    def test_undriven_output_rejected(self):
        n = Netlist("broken")
        n.add_input("a")
        n.set_outputs(["missing"])
        with pytest.raises(CompileError):
            CompiledCircuit(n)


class TestSlots:
    def test_inputs_occupy_leading_slots(self, small_circuit):
        compiled = small_circuit.compile()
        for j, net in enumerate(compiled.inputs):
            assert compiled.slot_of[net] == j

    def test_fanins_precede_outputs(self, small_circuit):
        compiled = small_circuit.compile()
        for out, fanins in zip(
            compiled.gate_output_slots, compiled.gate_fanin_slots
        ):
            assert all(s < out for s in fanins)

    def test_eval_batch_matches_evaluate_pattern(self, small_circuit):
        compiled = small_circuit.compile()
        patterns = list(range(0, 1 << len(compiled.inputs), 3))
        assert compiled.eval_batch(patterns) == [
            compiled.evaluate_pattern(p) for p in patterns
        ]

    def test_eval_batch_empty(self, small_circuit):
        assert small_circuit.compile().eval_batch([]) == []

    def test_levels_and_fanouts_agree_with_dict_walk(self, small_circuit):
        compiled = small_circuit.compile()
        levels = dict(zip(compiled.net_names, compiled.levels()))
        walk = {net: 0 for net in small_circuit.inputs}
        for gate in small_circuit.topological_order():
            walk[gate.output] = 1 + max(
                (walk[src] for src in gate.inputs), default=0
            )
        assert levels == walk
        readers = compiled.fanout_slots()
        expected = small_circuit.fanouts()
        for net, slot in compiled.slot_of.items():
            assert sorted(compiled.net_names[s] for s in readers[slot]) == sorted(
                expected[net]
            )


class TestContentHash:
    def test_stable_and_equal_for_same_structure(self):
        a = random_netlist(5, 25, seed=9).compile()
        b = random_netlist(5, 25, seed=9).compile()
        assert a.content_hash() == b.content_hash()
        assert a == b
        assert hash(a) == hash(b)

    def test_differs_for_different_structure(self):
        a = random_netlist(5, 25, seed=9).compile()
        b = random_netlist(5, 25, seed=10).compile()
        assert a.content_hash() != b.content_hash()
        assert a != b

    def test_internal_names_do_not_matter(self):
        """Renaming internal nets preserves the interned structure."""
        n = random_netlist(4, 20, seed=3)
        renamed = n.renamed("zz_", keep_inputs=n.inputs)
        # Restore the original interface names on the outputs.
        from repro.circuit.netlist import Gate

        for orig, pref in zip(n.outputs, renamed.outputs):
            renamed.gates[orig] = Gate(orig, GateType.BUF, (pref,))
        renamed.set_outputs(list(n.outputs))
        # Not identical structure (extra BUFs), but hashing is stable:
        assert renamed.compile().content_hash() == renamed.copy().compile().content_hash()
