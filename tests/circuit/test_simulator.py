"""Simulator tests: bit-parallel semantics and exhaustive patterns."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.circuit.simulator import (
    evaluate,
    exhaustive_patterns,
    outputs_as_int,
    random_patterns,
    simulate,
    truth_table,
)


def _xor_circuit() -> Netlist:
    n = Netlist("x")
    n.add_inputs(["a", "b"])
    n.add_gate("y", GateType.XOR, ["a", "b"])
    n.set_outputs(["y"])
    return n


class TestSimulate:
    def test_single_pattern(self):
        n = _xor_circuit()
        assert simulate(n, {"a": 1, "b": 0})["y"] == 1
        assert simulate(n, {"a": 1, "b": 1})["y"] == 0

    def test_parallel_lanes(self):
        n = _xor_circuit()
        values = simulate(n, {"a": 0b1100, "b": 0b1010}, width=4)
        assert values["y"] == 0b0110

    def test_missing_input_rejected(self):
        with pytest.raises(KeyError):
            simulate(_xor_circuit(), {"a": 1})

    def test_width_masks_excess_bits(self):
        n = _xor_circuit()
        values = simulate(n, {"a": 0b111111, "b": 0}, width=2)
        assert values["y"] == 0b11

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            simulate(_xor_circuit(), {"a": 1, "b": 1}, width=0)


class TestEvaluate:
    def test_mapping_interface(self):
        assert evaluate(_xor_circuit(), {"a": 1, "b": 1}) == {"y": 0}

    def test_sequence_interface(self):
        assert evaluate(_xor_circuit(), [1, 0]) == {"y": 1}

    def test_sequence_length_checked(self):
        with pytest.raises(ValueError):
            evaluate(_xor_circuit(), [1])


class TestExhaustive:
    def test_patterns_enumerate_all(self):
        pats = exhaustive_patterns(3)
        seen = set()
        for lane in range(8):
            seen.add(tuple((p >> lane) & 1 for p in pats))
        assert len(seen) == 8

    def test_lane_p_encodes_p(self):
        pats = exhaustive_patterns(4)
        for lane in range(16):
            value = sum(((pats[j] >> lane) & 1) << j for j in range(4))
            assert value == lane

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            exhaustive_patterns(25)

    def test_truth_table_xor(self):
        tt = truth_table(_xor_circuit())
        assert tt["y"] == 0b0110  # lanes 00,01,10,11 -> 0,1,1,0

    def test_truth_table_matches_evaluate(self, small_circuit):
        tt = truth_table(small_circuit)
        n_in = len(small_circuit.inputs)
        for pattern in (0, 1, (1 << n_in) - 1, 0b10101 % (1 << n_in)):
            bits = {
                net: (pattern >> j) & 1
                for j, net in enumerate(small_circuit.inputs)
            }
            single = evaluate(small_circuit, bits)
            for out in small_circuit.outputs:
                assert single[out] == (tt[out] >> pattern) & 1


class TestHelpers:
    def test_outputs_as_int(self):
        assert outputs_as_int({"x": 1, "y": 0, "z": 1}, ["x", "y", "z"]) == 0b101

    def test_random_patterns_deterministic(self):
        assert random_patterns(3, 64, seed=5) == random_patterns(3, 64, seed=5)
        assert random_patterns(3, 64, seed=5) != random_patterns(3, 64, seed=6)
