"""Netlist IR structural tests."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Gate, Netlist, NetlistError, fresh_net_namer


def _single_and() -> Netlist:
    n = Netlist("t")
    n.add_inputs(["a", "b"])
    n.add_gate("y", GateType.AND, ["a", "b"])
    n.set_outputs(["y"])
    return n


class TestConstruction:
    def test_basic(self):
        n = _single_and()
        n.validate()
        assert n.num_gates == 1
        assert n.nets() == ["a", "b", "y"]

    def test_duplicate_input_rejected(self):
        n = Netlist()
        n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_input("a")

    def test_gate_shadowing_input_rejected(self):
        n = Netlist()
        n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_gate("a", GateType.NOT, ["a"])

    def test_double_driver_rejected(self):
        n = _single_and()
        with pytest.raises(NetlistError):
            n.add_gate("y", GateType.OR, ["a", "b"])

    def test_input_shadowing_gate_rejected(self):
        n = _single_and()
        with pytest.raises(NetlistError):
            n.add_input("y")

    def test_bad_arity_rejected(self):
        n = Netlist()
        n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_gate("y", GateType.NOT, ["a", "a"])
        with pytest.raises(NetlistError):
            n.add_gate("z", GateType.MUX, ["a", "a"])

    def test_undriven_fanin_caught_by_validate(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("y", GateType.AND, ["a", "ghost"])
        n.set_outputs(["y"])
        with pytest.raises(NetlistError):
            n.validate()

    def test_undriven_output_caught(self):
        n = Netlist()
        n.add_input("a")
        n.set_outputs(["nowhere"])
        with pytest.raises(NetlistError):
            n.validate()

    def test_output_can_be_input(self):
        n = Netlist()
        n.add_input("a")
        n.set_outputs(["a"])
        n.validate()


class TestTopologicalOrder:
    def test_respects_dependencies(self):
        n = Netlist()
        n.add_input("a")
        # Insert in reverse order on purpose.
        n.gates["y"] = Gate("y", GateType.NOT, ("m",))
        n.gates["m"] = Gate("m", GateType.NOT, ("a",))
        n.set_outputs(["y"])
        order = [g.output for g in n.topological_order()]
        assert order.index("m") < order.index("y")

    def test_cycle_detected(self):
        n = Netlist()
        n.add_input("a")
        n.gates["x"] = Gate("x", GateType.AND, ("a", "y"))
        n.gates["y"] = Gate("y", GateType.AND, ("a", "x"))
        with pytest.raises(NetlistError):
            n.topological_order()

    def test_self_loop_detected(self):
        n = Netlist()
        n.add_input("a")
        n.gates["x"] = Gate("x", GateType.AND, ("a", "x"))
        with pytest.raises(NetlistError):
            n.topological_order()

    def test_deep_chain_no_recursion_error(self):
        n = Netlist()
        n.add_input("a")
        prev = "a"
        for i in range(5000):
            n.add_gate(f"g{i}", GateType.NOT, [prev])
            prev = f"g{i}"
        n.set_outputs([prev])
        assert len(n.topological_order()) == 5000


class TestTransforms:
    def test_copy_is_independent(self):
        n = _single_and()
        c = n.copy()
        c.add_gate("z", GateType.NOT, ["y"])
        assert "z" not in n.gates

    def test_renamed_keeps_shared_inputs(self):
        n = _single_and()
        r = n.renamed("p_", keep_inputs=["a", "b"])
        assert r.inputs == ["a", "b"]
        assert "p_y" in r.gates
        assert r.gates["p_y"].inputs == ("a", "b")

    def test_renamed_all(self):
        n = _single_and()
        r = n.renamed("p_")
        assert r.inputs == ["p_a", "p_b"]
        assert r.outputs == ["p_y"]

    def test_merged_shares_inputs(self):
        a = _single_and()
        b = Netlist()
        b.add_inputs(["a", "b"])
        b.add_gate("z", GateType.OR, ["a", "b"])
        b.set_outputs(["z"])
        m = a.merged_with(b)
        m.validate()
        assert set(m.outputs) == {"y", "z"}
        assert m.inputs == ["a", "b"]

    def test_merged_conflicting_driver_rejected(self):
        a = _single_and()
        b = Netlist()
        b.add_inputs(["a", "b"])
        b.add_gate("y", GateType.OR, ["a", "b"])
        b.set_outputs(["y"])
        with pytest.raises(NetlistError):
            a.merged_with(b)

    def test_fanouts(self):
        n = _single_and()
        n.add_gate("z", GateType.NOT, ["y"])
        fo = n.fanouts()
        assert fo["a"] == ["y"]
        assert fo["y"] == ["z"]
        assert fo["z"] == []

    def test_gate_type_histogram(self):
        n = _single_and()
        n.add_gate("z", GateType.NOT, ["y"])
        assert n.gate_type_histogram() == {"AND": 1, "NOT": 1}


class TestNamer:
    def test_fresh_names_avoid_collisions(self):
        n = _single_and()
        n.add_gate("syn_0", GateType.NOT, ["a"])
        namer = fresh_net_namer(n, "syn_")
        assert namer() == "syn_1"
        assert namer() == "syn_2"
