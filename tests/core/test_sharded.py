"""Sharded multi-key engine: parity against the reference arm.

The sharded engine must be *observably interchangeable* with the
per-sub-space reference implementation: same sub-space indexing, same
#DIP semantics, partial keys that unlock exactly the same sub-spaces,
and a composed netlist that passes CEC — only the wall-clock may
differ.  These tests pin that contract on seeded instances.
"""

import pytest

from repro.attacks.brute_force import brute_force_keys
from repro.circuit.random_circuits import random_netlist
from repro.core.compose import verify_composition
from repro.core.multikey import multikey_attack
from repro.core.sharded import ShardEngine, sharded_multikey_attack
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock
from repro.oracle.oracle import Oracle
from repro.runner import Runner, chunk_evenly


@pytest.fixture
def setup():
    original = random_netlist(7, 45, seed=29)
    locked = sarlock_lock(original, 4, seed=3)
    return original, locked


class TestShardedParity:
    """The sharded engine recovers the reference arm's partial-key sets."""

    @pytest.mark.parametrize("effort", [0, 1, 2, 3])
    def test_same_dip_counts_as_reference(self, setup, effort):
        # SARLock's #DIP is deterministic (one per wrong key in the
        # reachable sub-space), so both engines must agree exactly.
        original, locked = setup
        ref = multikey_attack(locked, original, effort=effort)
        sharded = sharded_multikey_attack(locked, original, effort=effort)
        assert sharded.dips_per_task == ref.dips_per_task
        assert sharded.splitting_inputs == ref.splitting_inputs
        assert sharded.status == ref.status == "ok"
        assert sharded.engine == "sharded"
        assert ref.engine == "reference"

    def test_keys_unlock_same_subspaces(self, setup):
        # A sub-space's *set* of valid partial keys is engine-
        # independent; each engine may pick any member of it.
        original, locked = setup
        ref = multikey_attack(locked, original, effort=2)
        sharded = sharded_multikey_attack(locked, original, effort=2)
        for ref_task, sharded_task in zip(ref.subtasks, sharded.subtasks):
            assert sharded_task.assignment == ref_task.assignment
            good = brute_force_keys(
                locked, Oracle(original), pin=sharded_task.assignment
            )
            assert sharded_task.key_int in good
            assert ref_task.key_int in good

    def test_composition_equivalent(self, setup):
        original, locked = setup
        result = sharded_multikey_attack(locked, original, effort=2)
        assert verify_composition(
            locked, result.splitting_inputs, result.keys, original
        ).equivalent

    def test_lut_lock_parity(self):
        original = random_netlist(8, 60, seed=31)
        locked = lut_lock(original, LutModuleSpec.tiny(), seed=2)
        ref = multikey_attack(locked, original, effort=2)
        sharded = sharded_multikey_attack(locked, original, effort=2)
        assert sharded.status == ref.status == "ok"
        assert verify_composition(
            locked, sharded.splitting_inputs, sharded.keys, original
        ).equivalent

    def test_xor_lock_parity(self):
        original = random_netlist(6, 40, seed=11)
        locked = xor_lock(original, 5, seed=4)
        sharded = sharded_multikey_attack(locked, original, effort=2)
        assert sharded.status == "ok"
        for task in sharded.subtasks:
            good = brute_force_keys(
                locked, Oracle(original), pin=task.assignment
            )
            assert task.key_int in good

    def test_dispatch_through_multikey_attack(self, setup):
        original, locked = setup
        result = multikey_attack(locked, original, effort=1, engine="sharded")
        assert result.engine == "sharded"
        assert len(result.subtasks) == 2
        with pytest.raises(ValueError):
            multikey_attack(locked, original, effort=1, engine="nonsense")


class TestShardedMechanics:
    def test_parallel_matches_serial(self, setup):
        original, locked = setup
        seq = sharded_multikey_attack(locked, original, effort=2)
        par = sharded_multikey_attack(
            locked, original, effort=2, parallel=True, processes=2
        )
        assert par.parallel is True and seq.parallel is False
        assert [t.index for t in par.subtasks] == [0, 1, 2, 3]
        assert par.dips_per_task == seq.dips_per_task
        for task in par.subtasks:
            good = brute_force_keys(
                locked, Oracle(original), pin=task.assignment
            )
            assert task.key_int in good

    def test_parallel_results_cacheable(self, setup, tmp_path):
        original, locked = setup
        runner = Runner(jobs=2, cache=None)
        first = sharded_multikey_attack(
            locked, original, effort=2, runner=runner
        )
        from repro.runner import ResultCache

        cached_runner = Runner(jobs=2, cache=ResultCache(tmp_path))
        warm1 = sharded_multikey_attack(
            locked, original, effort=2, runner=cached_runner
        )
        warm2 = sharded_multikey_attack(
            locked, original, effort=2, runner=cached_runner
        )
        assert warm1.dips_per_task == warm2.dips_per_task == first.dips_per_task

    def test_shard_engine_direct(self, setup):
        original, locked = setup
        engine = ShardEngine(
            locked, Oracle(original), [original.inputs[0], original.inputs[3]]
        )
        assert engine.num_shards == 4
        assert engine.assignment(3) == {
            original.inputs[0]: True,
            original.inputs[3]: True,
        }
        results = [engine.run_shard(i) for i in range(4)]
        for index, task in enumerate(results):
            assert task.index == index
            assert task.status == "ok"
            assert task.synthesis_seconds == 0.0
            assert task.solver_stats["solve_calls"] > 0
        with pytest.raises(ValueError):
            engine.run_shard(4)

    def test_shard_engine_rejects_bad_splitting_input(self, setup):
        original, locked = setup
        with pytest.raises(ValueError):
            ShardEngine(locked, Oracle(original), ["not_a_net"])

    def test_splitting_inputs_length_checked(self, setup):
        original, locked = setup
        with pytest.raises(ValueError):
            sharded_multikey_attack(
                locked, original, effort=2, splitting_inputs=["pi0"]
            )

    def test_budget_gives_partial_status(self, setup):
        original, locked = setup
        result = sharded_multikey_attack(
            locked, original, effort=1, max_dips_per_task=1
        )
        assert result.status == "partial"

    def test_per_shard_solver_stats_survive_pool(self, setup):
        # The regression this guards: per-shard stats crossing the
        # process-pool boundary, then aggregating on MultiKeyResult.
        original, locked = setup
        result = sharded_multikey_attack(
            locked, original, effort=2, parallel=True, processes=2
        )
        for task in result.subtasks:
            assert "conflicts" in task.solver_stats
            assert "decisions" in task.solver_stats
        totals = result.solver_stats
        assert totals["solve_calls"] == sum(
            t.solver_stats["solve_calls"] for t in result.subtasks
        )

    def test_warm_start_roundtrip(self, setup):
        original, locked = setup
        engine = ShardEngine(locked, Oracle(original), [original.inputs[0]])
        first = engine.run_shard(0)
        clauses = engine.export_warm_clauses()
        primed = ShardEngine(
            locked,
            Oracle(original),
            [original.inputs[0]],
            prime_learnts=clauses,
        )
        again = primed.run_shard(0)
        assert again.num_dips == first.num_dips
        assert again.key_int in brute_force_keys(
            locked, Oracle(original), pin=again.assignment
        )


class TestChunkEvenly:
    def test_even_split(self):
        assert chunk_evenly([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_split_front_loads(self):
        assert chunk_evenly([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 5) == [[1], [2]]

    def test_empty(self):
        assert chunk_evenly([], 3) == []

    def test_invalid_chunks(self):
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)
