"""Conditional netlist generation tests."""

import pytest

from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import truth_table
from repro.core.conditional import generate_conditional_netlist
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock


@pytest.fixture
def locked():
    original = random_netlist(6, 45, seed=17)
    return xor_lock(original, 4, seed=5)


class TestGenerate:
    def test_interface_preserved(self, locked):
        cond = generate_conditional_netlist(locked, {"pi0": True})
        assert cond.locked.netlist.inputs == locked.netlist.inputs
        assert cond.locked.netlist.outputs == locked.netlist.outputs
        assert cond.locked.key_inputs == locked.key_inputs

    def test_gate_reduction_reported(self, locked):
        cond = generate_conditional_netlist(
            locked, {"pi0": True, "pi1": False}
        )
        assert cond.gates_after <= cond.gates_before
        assert cond.gates_before == locked.netlist.num_gates
        assert cond.synthesis is not None

    def test_no_synthesis_mode(self, locked):
        cond = generate_conditional_netlist(
            locked, {"pi0": True}, run_synthesis=False
        )
        assert cond.synthesis is None
        assert cond.locked.netlist is locked.netlist

    def test_function_preserved_on_consistent_patterns(self, locked):
        assignment = {"pi0": True, "pi1": False}
        cond = generate_conditional_netlist(locked, assignment)
        tt_full = truth_table(locked.netlist)
        tt_cond = truth_table(cond.locked.netlist)
        inputs = locked.netlist.inputs
        pos = {net: j for j, net in enumerate(inputs)}
        total = len(inputs)
        for pattern in range(0, 1 << total, 7):  # sparse sweep
            if any(
                ((pattern >> pos[net]) & 1) != int(v)
                for net, v in assignment.items()
            ):
                continue
            for out in locked.netlist.outputs:
                assert ((tt_full[out] >> pattern) & 1) == (
                    (tt_cond[out] >> pattern) & 1
                )

    def test_pin_on_key_input_rejected(self, locked):
        with pytest.raises(ValueError):
            generate_conditional_netlist(locked, {locked.key_inputs[0]: True})

    def test_correct_key_still_unlocks_subspace(self):
        original = random_netlist(6, 40, seed=19)
        locked = sarlock_lock(original, 4, seed=2)
        assignment = {original.inputs[0]: False}
        cond = generate_conditional_netlist(locked, assignment)
        # The correct key must still satisfy the conditional netlist on
        # all patterns consistent with the assignment.
        keyed_cond = cond.locked.apply_key(locked.correct_key)
        keyed_full = locked.apply_key(locked.correct_key)
        tt_c = truth_table(keyed_cond)
        tt_f = truth_table(keyed_full)
        pos = {net: j for j, net in enumerate(keyed_full.inputs)}
        for pattern in range(1 << len(keyed_full.inputs)):
            if ((pattern >> pos[original.inputs[0]]) & 1) != 0:
                continue
            for out in original.outputs:
                assert ((tt_c[out] >> pattern) & 1) == (
                    (tt_f[out] >> pattern) & 1
                )
