"""Multi-core schedule model tests."""

import pytest

from repro.core.scheduling import attack_time_on_cores, lpt_schedule, speedup_curve


class TestLpt:
    def test_single_core_sums(self):
        s = lpt_schedule([3.0, 1.0, 2.0], 1)
        assert s.makespan_seconds == pytest.approx(6.0)
        assert s.utilization == pytest.approx(1.0)

    def test_enough_cores_gives_max(self):
        s = lpt_schedule([3.0, 1.0, 2.0], 3)
        assert s.makespan_seconds == pytest.approx(3.0)

    def test_classic_lpt_case(self):
        # 2 cores, jobs 3,3,2,2,2: the textbook LPT example — greedy
        # yields 7 while the optimum is 6 (within the 4/3 bound).
        s = lpt_schedule([3, 3, 2, 2, 2], 2)
        assert s.makespan_seconds == pytest.approx(7.0)
        assert s.makespan_seconds <= 6.0 * 4 / 3

    def test_every_task_assigned_once(self):
        s = lpt_schedule([5, 4, 3, 2, 1], 2)
        flat = sorted(i for core in s.assignment for i in core)
        assert flat == [0, 1, 2, 3, 4]

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            lpt_schedule([1.0], 0)

    def test_empty_tasks(self):
        s = lpt_schedule([], 4)
        assert s.makespan_seconds == 0.0


class TestAttackTimeModel:
    @pytest.fixture
    def result(self):
        from repro.circuit.random_circuits import random_netlist
        from repro.core.multikey import multikey_attack
        from repro.locking.sarlock import sarlock_lock

        original = random_netlist(7, 40, seed=95)
        locked = sarlock_lock(original, 4, seed=1)
        return multikey_attack(locked, original, effort=3)

    def test_16_cores_equals_max_task(self, result):
        modelled = attack_time_on_cores(result, 16)
        assert modelled == pytest.approx(result.max_subtask_seconds)

    def test_one_core_equals_total(self, result):
        total = sum(t.total_seconds for t in result.subtasks)
        assert attack_time_on_cores(result, 1) == pytest.approx(total)

    def test_speedup_curve_monotone(self, result):
        curve = speedup_curve(result, [1, 2, 4, 8])
        times = [t for _, t, _ in curve]
        assert times == sorted(times, reverse=True)
        assert curve[0][2] == pytest.approx(1.0)
