"""Fig. 1(b) composition tests."""

import pytest
from hypothesis import given, strategies as st

from repro.attacks.brute_force import brute_force_keys
from repro.circuit.equivalence import check_equivalence
from repro.circuit.random_circuits import random_netlist
from repro.core.compose import compose_multikey_netlist, verify_composition
from repro.core.splitting import splitting_assignments
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock
from repro.oracle.oracle import Oracle


@pytest.fixture
def setup():
    original = random_netlist(6, 35, seed=37)
    locked = sarlock_lock(original, 4, seed=4)
    return original, locked


class TestCompose:
    def test_zero_split_is_apply_key(self, setup):
        original, locked = setup
        composed = compose_multikey_netlist(
            locked, [], [locked.correct_key_int]
        )
        assert check_equivalence(composed, original).equivalent

    def test_same_key_everywhere(self, setup):
        original, locked = setup
        keys = [locked.correct_key_int] * 4
        composed = compose_multikey_netlist(
            locked, original.inputs[:2], keys
        )
        composed.validate()
        assert check_equivalence(composed, original).equivalent
        # Uniform keys fold to constants: the composition itself (mk_*
        # nets and the key-port drivers) must not contain any MUX.
        original_gates = set(locked.netlist.gates)
        added = [
            g for net, g in composed.gates.items() if net not in original_gates
        ]
        assert added  # the key ports are now gate-driven
        assert all(g.gtype.value != "MUX" for g in added)

    def test_key_count_checked(self, setup):
        original, locked = setup
        with pytest.raises(ValueError):
            compose_multikey_netlist(locked, ["pi0"], [0, 1, 2])

    def test_unknown_splitting_input_rejected(self, setup):
        original, locked = setup
        with pytest.raises(ValueError):
            compose_multikey_netlist(locked, ["ghost"], [0, 1])

    def test_composed_has_no_key_ports(self, setup):
        original, locked = setup
        composed = compose_multikey_netlist(
            locked, ["pi0"], [locked.correct_key_int] * 2
        )
        assert composed.inputs == original.inputs

    def test_subspace_correct_keys_compose_to_equivalent(self, setup):
        """The paper's core claim, validated by brute force + CEC."""
        original, locked = setup
        splitting = [original.inputs[0]]
        keys = []
        for assignment in splitting_assignments(splitting):
            good = brute_force_keys(locked, Oracle(original), pin=assignment)
            # Prefer an incorrect key to make the claim sharp.
            incorrect = [k for k in good if k != locked.correct_key_int]
            keys.append(incorrect[0] if incorrect else good[0])
        result = verify_composition(locked, splitting, keys, original)
        assert result.equivalent

    def test_wrong_subspace_key_breaks_composition(self, setup):
        original, locked = setup
        splitting = [original.inputs[0]]
        good = brute_force_keys(
            locked, Oracle(original), pin={splitting[0]: False}
        )
        bad_candidates = [k for k in range(16) if k not in good]
        keys = [bad_candidates[0], locked.correct_key_int]
        result = verify_composition(locked, splitting, keys, original)
        assert not result.equivalent
        assert result.counterexample is not None


@given(seed=st.integers(0, 2000), key_size=st.sampled_from([3, 4]))
def test_composition_property_xor_lock(seed, key_size):
    """For XOR locking, composing per-subspace brute-forced keys on a
    random splitting input is always equivalent to the original."""
    original = random_netlist(5, 25, seed=seed)
    locked = xor_lock(original, key_size, seed=seed)
    splitting = [original.inputs[seed % len(original.inputs)]]
    keys = []
    for assignment in splitting_assignments(splitting):
        good = brute_force_keys(locked, Oracle(original), pin=assignment)
        keys.append(good[seed % len(good)])
    assert verify_composition(locked, splitting, keys, original).equivalent
