"""Splitting-input selection tests."""

import pytest

from repro.circuit.random_circuits import random_netlist
from repro.core.splitting import select_splitting_inputs, splitting_assignments
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock


@pytest.fixture
def locked():
    original = random_netlist(8, 50, seed=3)
    return sarlock_lock(original, 4, seed=1)


class TestSelect:
    def test_fanout_prefers_protected_inputs(self, locked):
        # For SARLock, only the protected inputs feed the comparator
        # cone, so they must outrank the rest.
        chosen = select_splitting_inputs(locked, 2, strategy="fanout")
        protected = set(locked.meta["protected_inputs"])
        assert set(chosen) <= protected

    def test_effort_zero(self, locked):
        assert select_splitting_inputs(locked, 0) == []

    def test_effort_bounds(self, locked):
        with pytest.raises(ValueError):
            select_splitting_inputs(locked, -1)
        with pytest.raises(ValueError):
            select_splitting_inputs(locked, 100)

    def test_random_strategy_deterministic_by_seed(self, locked):
        a = select_splitting_inputs(locked, 3, strategy="random", seed=7)
        b = select_splitting_inputs(locked, 3, strategy="random", seed=7)
        assert a == b
        assert set(a) <= set(locked.original_inputs)

    def test_first_strategy(self, locked):
        assert (
            select_splitting_inputs(locked, 2, strategy="first")
            == locked.original_inputs[:2]
        )

    def test_unknown_strategy_rejected(self, locked):
        with pytest.raises(ValueError):
            select_splitting_inputs(locked, 2, strategy="psychic")

    def test_never_selects_key_inputs(self):
        original = random_netlist(6, 40, seed=9)
        lk = xor_lock(original, 5, seed=2)
        chosen = select_splitting_inputs(lk, 4)
        assert not (set(chosen) & set(lk.key_inputs))


class TestAssignments:
    def test_count_and_indexing(self):
        assignments = splitting_assignments(["x", "y", "z"])
        assert len(assignments) == 8
        # Algorithm 1 indexing: bit j of the index = value of input j.
        assert assignments[0] == {"x": False, "y": False, "z": False}
        assert assignments[5] == {"x": True, "y": False, "z": True}

    def test_empty(self):
        assert splitting_assignments([]) == [{}]
