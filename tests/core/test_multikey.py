"""Algorithm 1 tests: the multi-key attack end to end."""

import pytest

from repro.attacks.brute_force import brute_force_keys
from repro.circuit.random_circuits import random_netlist
from repro.core.compose import verify_composition
from repro.core.multikey import multikey_attack
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.locking.sarlock import sarlock_lock
from repro.oracle.oracle import Oracle


@pytest.fixture
def setup():
    original = random_netlist(7, 45, seed=29)
    locked = sarlock_lock(original, 4, seed=3)
    return original, locked


class TestAlgorithm1:
    def test_effort_zero_is_baseline(self, setup):
        original, locked = setup
        result = multikey_attack(locked, original, effort=0)
        assert len(result.subtasks) == 1
        assert result.splitting_inputs == []
        assert result.subtasks[0].key_int == locked.correct_key_int

    @pytest.mark.parametrize("effort", [1, 2, 3])
    def test_task_count_is_2_to_n(self, setup, effort):
        original, locked = setup
        result = multikey_attack(locked, original, effort=effort)
        assert len(result.subtasks) == 1 << effort
        assert result.status == "ok"

    def test_each_key_unlocks_its_subspace(self, setup):
        original, locked = setup
        result = multikey_attack(locked, original, effort=2)
        for task in result.subtasks:
            good = brute_force_keys(
                locked, Oracle(original), pin=task.assignment
            )
            assert task.key_int in good

    def test_dips_halve_with_effort(self, setup):
        original, locked = setup
        dips = []
        for effort in range(3):
            result = multikey_attack(locked, original, effort=effort)
            dips.append(max(result.dips_per_task))
        assert dips[0] > dips[1] > dips[2]

    def test_composition_equivalent(self, setup):
        original, locked = setup
        result = multikey_attack(locked, original, effort=2)
        assert verify_composition(
            locked, result.splitting_inputs, result.keys, original
        ).equivalent

    def test_parallel_matches_sequential(self, setup):
        original, locked = setup
        seq = multikey_attack(locked, original, effort=2, parallel=False)
        par = multikey_attack(locked, original, effort=2, parallel=True,
                              processes=2)
        assert seq.key_ints == par.key_ints
        assert seq.dips_per_task == par.dips_per_task
        assert par.parallel is True
        assert seq.parallel is False

    def test_lut_lock_multikey(self):
        original = random_netlist(8, 60, seed=31)
        locked = lut_lock(original, LutModuleSpec.tiny(), seed=2)
        result = multikey_attack(locked, original, effort=2)
        assert result.status == "ok"
        assert verify_composition(
            locked, result.splitting_inputs, result.keys, original
        ).equivalent

    def test_explicit_splitting_inputs(self, setup):
        original, locked = setup
        chosen = [original.inputs[2], original.inputs[5]]
        result = multikey_attack(
            locked, original, effort=2, splitting_inputs=chosen
        )
        assert result.splitting_inputs == chosen
        for index, task in enumerate(result.subtasks):
            assert task.assignment == {
                chosen[0]: bool(index & 1),
                chosen[1]: bool(index & 2),
            }

    def test_splitting_inputs_length_checked(self, setup):
        original, locked = setup
        with pytest.raises(ValueError):
            multikey_attack(
                locked, original, effort=2, splitting_inputs=["pi0"]
            )

    def test_no_synthesis_same_keys(self, setup):
        original, locked = setup
        with_synth = multikey_attack(locked, original, effort=1)
        without = multikey_attack(
            locked, original, effort=1, run_synthesis=False
        )
        # The search is deterministic given the same netlist structure?
        # Not guaranteed — but both key sets must unlock their subspaces.
        for task in without.subtasks:
            good = brute_force_keys(
                locked, Oracle(original), pin=task.assignment
            )
            assert task.key_int in good
        assert with_synth.status == without.status == "ok"

    def test_metrics_populated(self, setup):
        original, locked = setup
        result = multikey_attack(locked, original, effort=2)
        assert result.max_subtask_seconds >= result.mean_subtask_seconds
        assert result.mean_subtask_seconds >= result.min_subtask_seconds
        assert result.total_dips == sum(result.dips_per_task)
        assert result.wall_seconds > 0
        for task in result.subtasks:
            assert task.gates_after <= task.gates_before
            assert task.oracle_queries == task.num_dips

    def test_partial_status_on_budget(self, setup):
        original, locked = setup
        result = multikey_attack(
            locked, original, effort=1, max_dips_per_task=1
        )
        assert result.status == "partial"
        assert result.keys == [] or len(result.keys) < 2
