"""Property tests for the LPT schedule model.

Complements :mod:`tests.core.test_scheduling`'s example-based cases
with randomized duration lists: for any inputs the makespan must sit
between the trivial lower bounds (longest single task, perfect load
balance) and the serial upper bound (sum of all durations).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.scheduling import lpt_schedule

durations_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=48,
)
core_counts = st.integers(min_value=1, max_value=32)


@given(durations_lists, core_counts)
def test_makespan_within_fundamental_bounds(durations, num_cores):
    schedule = lpt_schedule(durations, num_cores)
    total = sum(durations)
    longest = max(durations)
    # Never better than running the single longest task...
    assert schedule.makespan_seconds >= longest - 1e-9
    # ... or than spreading the load perfectly over every core ...
    assert schedule.makespan_seconds >= total / num_cores - 1e-6 * max(total, 1)
    # ... and never worse than running everything serially.
    assert schedule.makespan_seconds <= total + 1e-6 * max(total, 1)


@given(durations_lists, core_counts)
def test_every_task_scheduled_exactly_once(durations, num_cores):
    schedule = lpt_schedule(durations, num_cores)
    flat = sorted(i for core in schedule.assignment for i in core)
    assert flat == list(range(len(durations)))
    # Per-core loads are consistent with the assignment.
    for load, tasks in zip(schedule.core_loads, schedule.assignment):
        assert load == sum(durations[i] for i in tasks)


@given(durations_lists)
def test_single_core_is_serial_sum(durations):
    schedule = lpt_schedule(durations, 1)
    assert abs(schedule.makespan_seconds - sum(durations)) <= 1e-6 * max(
        sum(durations), 1
    )


@given(durations_lists, core_counts)
def test_greedy_list_scheduling_bound(durations, num_cores):
    """Any greedy list schedule satisfies Graham's bound
    ``makespan <= total/m + (1 - 1/m) * longest``."""
    schedule = lpt_schedule(durations, num_cores)
    bound = sum(durations) / num_cores + (
        1 - 1 / num_cores
    ) * max(durations)
    assert schedule.makespan_seconds <= bound + 1e-6 * max(bound, 1)
