"""Structural hashing, dead-code removal, decomposition, pipeline."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import truth_table
from repro.synth.cleanup import remove_dead_gates
from repro.synth.mapping import decompose_to_max_arity
from repro.synth.optimize import synthesize
from repro.synth.strash import structural_hash


class TestStrash:
    def test_merges_identical_gates(self):
        n = Netlist()
        n.add_inputs(["a", "b"])
        n.add_gate("x", GateType.AND, ["a", "b"])
        n.add_gate("y", GateType.AND, ["a", "b"])
        n.add_gate("z", GateType.OR, ["x", "y"])
        n.set_outputs(["z"])
        s = structural_hash(n)
        assert s.num_gates == 2  # one AND survives; OR(x,x) still OR

    def test_commutative_inputs_merge(self):
        n = Netlist()
        n.add_inputs(["a", "b"])
        n.add_gate("x", GateType.AND, ["a", "b"])
        n.add_gate("y", GateType.AND, ["b", "a"])
        n.set_outputs(["x", "y"])
        s = structural_hash(n)
        # Both outputs survive by name; one is a BUF of the other.
        assert truth_table(s)["x"] == truth_table(s)["y"]
        kinds = {s.gates["x"].gtype, s.gates["y"].gtype}
        assert GateType.BUF in kinds

    def test_mux_input_order_not_commutative(self):
        n = Netlist()
        n.add_inputs(["s", "a", "b"])
        n.add_gate("x", GateType.MUX, ["s", "a", "b"])
        n.add_gate("y", GateType.MUX, ["s", "b", "a"])
        n.set_outputs(["x", "y"])
        s = structural_hash(n)
        assert s.num_gates == 2

    def test_cascading_merges_single_pass(self):
        n = Netlist()
        n.add_inputs(["a", "b"])
        n.add_gate("x1", GateType.AND, ["a", "b"])
        n.add_gate("x2", GateType.AND, ["a", "b"])
        n.add_gate("y1", GateType.NOT, ["x1"])
        n.add_gate("y2", GateType.NOT, ["x2"])
        n.set_outputs(["y1", "y2"])
        s = structural_hash(n)
        real_gates = [
            g for g in s.gates.values() if g.gtype is not GateType.BUF
        ]
        assert len(real_gates) == 2  # one AND + one NOT


class TestDeadGateRemoval:
    def test_removes_unreachable(self, small_circuit):
        n = small_circuit.copy()
        n.add_gate("dead1", GateType.NOT, ["pi0"])
        n.add_gate("dead2", GateType.AND, ["dead1", "pi1"])
        cleaned = remove_dead_gates(n)
        assert "dead1" not in cleaned.gates
        assert "dead2" not in cleaned.gates

    def test_keeps_interface(self, small_circuit):
        n = small_circuit.copy()
        n.add_gate("dead", GateType.NOT, ["pi0"])
        cleaned = remove_dead_gates(n)
        assert cleaned.inputs == n.inputs
        assert cleaned.outputs == n.outputs

    def test_function_unchanged(self, small_circuit):
        cleaned = remove_dead_gates(small_circuit)
        tt_a, tt_b = truth_table(small_circuit), truth_table(cleaned)
        assert all(tt_a[o] == tt_b[o] for o in small_circuit.outputs)


class TestDecompose:
    @pytest.mark.parametrize("max_arity", [2, 3])
    def test_bounds_arity(self, max_arity):
        n = Netlist()
        n.add_inputs([f"i{k}" for k in range(9)])
        n.add_gate("y", GateType.NAND, [f"i{k}" for k in range(9)])
        n.set_outputs(["y"])
        d = decompose_to_max_arity(n, max_arity)
        d.validate()
        assert all(len(g.inputs) <= max_arity for g in d.gates.values())
        assert truth_table(d)["y"] == truth_table(n)["y"]

    def test_bad_arity_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            decompose_to_max_arity(small_circuit, 1)

    @given(seed=st.integers(0, 5_000))
    def test_function_preserved(self, seed):
        n = random_netlist(5, 25, seed=seed)
        d = decompose_to_max_arity(n, 2)
        d.validate()
        tt_a, tt_b = truth_table(n), truth_table(d)
        assert all(tt_a[o] == tt_b[o] for o in n.outputs)


class TestSynthesizePipeline:
    def test_reports_reduction(self, small_circuit):
        result = synthesize(small_circuit, {"pi0": True, "pi1": False})
        assert result.gates_before == small_circuit.num_gates
        assert result.gates_after == result.netlist.num_gates
        assert 0.0 <= result.reduction <= 1.0
        assert result.elapsed_seconds >= 0

    def test_effort_zero_still_constant_propagates(self, small_circuit):
        result = synthesize(small_circuit, {"pi0": True}, effort=0)
        assert result.netlist.num_gates <= small_circuit.num_gates

    @given(seed=st.integers(0, 5_000))
    def test_full_pipeline_preserves_function(self, seed):
        n = random_netlist(5, 40, seed=seed, allow_const=True)
        result = synthesize(n)
        result.netlist.validate()
        tt_a, tt_b = truth_table(n), truth_table(result.netlist)
        assert all(tt_a[o] == tt_b[o] for o in n.outputs)

    def test_empty_pin_is_rewrite_only(self, small_circuit):
        result = synthesize(small_circuit)
        assert result.netlist.inputs == small_circuit.inputs
