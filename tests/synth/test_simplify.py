"""Constant-propagation / rewriting tests, including equivalence properties."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import truth_table
from repro.synth.simplify import propagate_constants, rewrite, simplify


def _net(*inputs: str) -> Netlist:
    n = Netlist("t")
    n.add_inputs(list(inputs))
    return n


class TestIdentities:
    def test_and_with_zero_is_zero(self):
        n = _net("a")
        n.add_gate("z", GateType.CONST0, [])
        n.add_gate("y", GateType.AND, ["a", "z"])
        n.set_outputs(["y"])
        s = rewrite(n)
        assert truth_table(s)["y"] == 0
        assert s.gates["y"].gtype is GateType.CONST0

    def test_and_with_one_passes_through(self):
        n = _net("a")
        n.add_gate("one", GateType.CONST1, [])
        n.add_gate("y", GateType.AND, ["a", "one"])
        n.set_outputs(["y"])
        s = rewrite(n)
        assert s.gates["y"].gtype is GateType.BUF
        assert s.gates["y"].inputs == ("a",)

    def test_and_duplicate_inputs(self):
        n = _net("a")
        n.add_gate("y", GateType.AND, ["a", "a", "a"])
        n.set_outputs(["y"])
        assert rewrite(n).gates["y"].gtype is GateType.BUF

    def test_and_complementary_inputs(self):
        n = _net("a")
        n.add_gate("na", GateType.NOT, ["a"])
        n.add_gate("y", GateType.AND, ["a", "na"])
        n.set_outputs(["y"])
        assert rewrite(n).gates["y"].gtype is GateType.CONST0

    def test_or_complementary_inputs(self):
        n = _net("a")
        n.add_gate("na", GateType.NOT, ["a"])
        n.add_gate("y", GateType.OR, ["a", "na"])
        n.set_outputs(["y"])
        assert rewrite(n).gates["y"].gtype is GateType.CONST1

    def test_xor_self_cancels(self):
        n = _net("a")
        n.add_gate("y", GateType.XOR, ["a", "a"])
        n.set_outputs(["y"])
        assert rewrite(n).gates["y"].gtype is GateType.CONST0

    def test_xor_with_complement_is_one(self):
        n = _net("a")
        n.add_gate("na", GateType.NOT, ["a"])
        n.add_gate("y", GateType.XOR, ["a", "na"])
        n.set_outputs(["y"])
        assert rewrite(n).gates["y"].gtype is GateType.CONST1

    def test_double_negation_collapses(self):
        n = _net("a")
        n.add_gate("n1", GateType.NOT, ["a"])
        n.add_gate("n2", GateType.NOT, ["n1"])
        n.add_gate("y", GateType.BUF, ["n2"])
        n.set_outputs(["y"])
        s = rewrite(n)
        assert s.gates["y"].gtype is GateType.BUF
        assert s.gates["y"].inputs == ("a",)
        assert s.num_gates == 1

    def test_nand_single_literal_becomes_not(self):
        n = _net("a")
        n.add_gate("one", GateType.CONST1, [])
        n.add_gate("y", GateType.NAND, ["a", "one"])
        n.set_outputs(["y"])
        assert rewrite(n).gates["y"].gtype is GateType.NOT

    def test_xnor_parity_folding(self):
        n = _net("a", "b")
        n.add_gate("na", GateType.NOT, ["a"])
        n.add_gate("y", GateType.XNOR, ["na", "b"])  # = XOR(a, b)
        n.set_outputs(["y"])
        s = rewrite(n)
        assert s.gates["y"].gtype is GateType.XOR
        assert set(s.gates["y"].inputs) == {"a", "b"}


class TestMux:
    def test_const_select(self):
        n = _net("a", "b", "s")
        n.add_gate("one", GateType.CONST1, [])
        n.add_gate("y", GateType.MUX, ["one", "a", "b"])
        n.set_outputs(["y"])
        s = rewrite(n)
        assert s.gates["y"].inputs == ("a",)

    def test_same_branches(self):
        n = _net("a", "s")
        n.add_gate("y", GateType.MUX, ["s", "a", "a"])
        n.set_outputs(["y"])
        assert rewrite(n).gates["y"].inputs == ("a",)

    def test_const_branches_become_select(self):
        n = _net("s")
        n.add_gate("one", GateType.CONST1, [])
        n.add_gate("zero", GateType.CONST0, [])
        n.add_gate("y", GateType.MUX, ["s", "one", "zero"])
        n.set_outputs(["y"])
        s = rewrite(n)
        assert s.gates["y"].gtype is GateType.BUF
        assert s.gates["y"].inputs == ("s",)

    def test_const_branches_inverted(self):
        n = _net("s")
        n.add_gate("one", GateType.CONST1, [])
        n.add_gate("zero", GateType.CONST0, [])
        n.add_gate("y", GateType.MUX, ["s", "zero", "one"])
        n.set_outputs(["y"])
        assert rewrite(n).gates["y"].gtype is GateType.NOT

    def test_complement_branches_become_xor(self):
        n = _net("s", "x")
        n.add_gate("nx", GateType.NOT, ["x"])
        n.add_gate("y", GateType.MUX, ["s", "nx", "x"])
        n.set_outputs(["y"])
        s = rewrite(n)
        assert s.gates["y"].gtype in (GateType.XOR, GateType.XNOR)
        tt = truth_table(s)
        assert tt["y"] == truth_table(n)["y"]


class TestPinning:
    def test_pin_keeps_interface(self, small_circuit):
        s = propagate_constants(small_circuit, {"pi0": True})
        assert s.inputs == small_circuit.inputs
        assert s.outputs == small_circuit.outputs

    def test_pin_reduces_gates(self, small_circuit):
        s = propagate_constants(
            small_circuit, {"pi0": True, "pi1": False, "pi2": True}
        )
        assert s.num_gates < small_circuit.num_gates

    def test_pin_unknown_input_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            propagate_constants(small_circuit, {"nope": True})

    def test_pinned_output_becomes_const(self):
        n = _net("a", "b")
        n.add_gate("y", GateType.AND, ["a", "b"])
        n.set_outputs(["y"])
        s = propagate_constants(n, {"a": False})
        assert s.gates["y"].gtype is GateType.CONST0


@given(seed=st.integers(0, 10_000), allow_const=st.booleans())
def test_rewrite_preserves_function(seed, allow_const):
    n = random_netlist(5, 35, seed=seed, allow_const=allow_const)
    s = rewrite(n)
    s.validate()
    tt_a, tt_b = truth_table(n), truth_table(s)
    assert all(tt_a[o] == tt_b[o] for o in n.outputs)


@given(seed=st.integers(0, 10_000), pins=st.integers(0, 7))
def test_pinning_preserves_consistent_patterns(seed, pins):
    n = random_netlist(5, 30, seed=seed)
    pin = {f"pi{j}": bool((pins >> j) & 1) for j in range(3)}
    s = simplify(n, pin)
    s.validate()
    tt_a, tt_b = truth_table(n), truth_table(s)
    for pattern in range(32):
        if any(((pattern >> j) & 1) != int(pin[f"pi{j}"]) for j in range(3)):
            continue
        for out in n.outputs:
            assert ((tt_a[out] >> pattern) & 1) == ((tt_b[out] >> pattern) & 1)


@given(seed=st.integers(0, 10_000))
def test_rewrite_is_idempotent_in_size(seed):
    n = random_netlist(5, 30, seed=seed, allow_const=True)
    once = rewrite(n)
    twice = rewrite(once)
    assert twice.num_gates <= once.num_gates
