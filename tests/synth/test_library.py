"""Cell library / area / delay estimation tests."""

import pytest

from repro.bench_circuits.generators import ripple_carry_adder
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.synth.library import (
    Cell,
    CellLibrary,
    NANGATE45ish,
    estimate_area,
    estimate_delay,
)


class TestLibrary:
    def test_lookup(self):
        cell = NANGATE45ish.lookup(GateType.NAND, 2)
        assert cell is not None
        assert cell.name == "NAND2_X1"

    def test_max_arity(self):
        assert NANGATE45ish.max_arity(GateType.AND) == 4
        assert NANGATE45ish.max_arity(GateType.MUX) == 3

    def test_missing_cell_returns_none(self):
        assert NANGATE45ish.lookup(GateType.XOR, 7) is None

    def test_inverter_cheapest(self):
        inv = NANGATE45ish.lookup(GateType.NOT, 1).area
        for cell in NANGATE45ish.cells:
            if cell.gtype not in (GateType.CONST0, GateType.CONST1):
                assert cell.area >= inv


class TestEstimates:
    def test_area_positive_and_monotone_in_size(self):
        small = ripple_carry_adder(4)
        big = ripple_carry_adder(16)
        assert 0 < estimate_area(small) < estimate_area(big)

    def test_delay_grows_with_ripple_length(self):
        assert estimate_delay(ripple_carry_adder(4)) < estimate_delay(
            ripple_carry_adder(32)
        )

    def test_wide_gates_are_decomposed_not_rejected(self):
        n = Netlist()
        n.add_inputs([f"i{k}" for k in range(12)])
        n.add_gate("y", GateType.AND, [f"i{k}" for k in range(12)])
        n.set_outputs(["y"])
        assert estimate_area(n) > 0

    def test_empty_circuit(self):
        n = Netlist()
        n.add_input("a")
        n.set_outputs(["a"])
        assert estimate_area(n) == 0.0
        assert estimate_delay(n) == 0.0

    def test_custom_library_missing_cell_raises(self):
        tiny = CellLibrary(
            "tiny", [Cell("INV", GateType.NOT, 1, 1.0, 0.01)]
        )
        n = Netlist()
        n.add_inputs(["a", "b"])
        n.add_gate("y", GateType.AND, ["a", "b"])
        n.set_outputs(["y"])
        with pytest.raises(ValueError):
            estimate_area(n, tiny)
