"""Scenario-matrix tests: spec expansion, cell evaluation, parity.

Covers the PR-4 acceptance criteria: multi-key AppSAT recovers
sub-space keys on SARLock and LUT-lock (seeded parity against the
exact attack), a matrix-spec rerun of Table 1 reproduces the classic
driver's rows byte-for-byte, and Anti-SAT — shipped but previously
unexercised by any multi-key test — is attacked through
``multikey_attack`` as a tier-1 scenario.
"""

import pickle

import pytest

from repro.attacks.brute_force import brute_force_keys
from repro.circuit.random_circuits import random_netlist
from repro.core.compose import verify_composition
from repro.core.multikey import multikey_attack
from repro.experiments.table1 import Table1Cell, Table1Result, run_table1
from repro.locking import lock_circuit
from repro.locking.sarlock import sarlock_lock
from repro.oracle.oracle import Oracle
from repro.runner import ResultCache, Runner, canonical_json
from repro.scenarios import ScenarioSpec, normalize_axis, run_matrix

#: Strict AppSAT settings: converge exactly before ever settling, so
#: seeded runs are deterministic and parity-comparable with "sat".
STRICT_APPSAT = {
    "dips_per_round": 64,
    "error_threshold": 0.0,
    "settle_rounds": 99,
}


class TestScenarioSpec:
    def test_axis_normalization_forms(self):
        assert normalize_axis("sarlock") == ("sarlock", {})
        assert normalize_axis(("sarlock", {"key_size": 8})) == (
            "sarlock",
            {"key_size": 8},
        )
        assert normalize_axis({"name": "sarlock", "key_size": 8}) == (
            "sarlock",
            {"key_size": 8},
        )
        with pytest.raises(ValueError, match="name"):
            normalize_axis({"key_size": 8})

    def test_expand_size_and_order(self):
        spec = ScenarioSpec(
            schemes=[("sarlock", {"key_size": 3}), "xor"],
            attacks=("sat", "appsat"),
            engines=("sharded", "reference"),
            circuits=("c432", "c880"),
            efforts=(0, 1),
            seeds=(0,),
        )
        tasks = spec.expand()
        # sat keeps both engines; appsat (no shard_fn) collapses to one
        # reference cell per grid point instead of running twice.
        assert spec.size == len(tasks) == 2 * (2 + 1) * 2 * 2
        # scheme-major, effort inner: the classic table drivers' order.
        assert tasks[0].params["scheme"] == "sarlock"
        assert tasks[0].params["effort"] == 0
        assert tasks[1].params["effort"] == 1
        assert tasks[-1].params["scheme"] == "xor"

    def test_engine_axis_collapses_for_non_shardable_attacks(self):
        spec = ScenarioSpec(
            schemes=["sarlock"],
            attacks=("appsat", "brute_force"),
            engines=("sharded", "reference"),
        )
        assert spec.effective_engines("sat") == ["sharded", "reference"]
        assert spec.effective_engines("appsat") == ["reference"]
        engines = [task.params["engine"] for task in spec.expand()]
        assert engines == ["reference", "reference"]

    def test_unknown_scheme_rejected_with_roster(self):
        with pytest.raises(ValueError) as err:
            ScenarioSpec(schemes=["nope"])
        assert "sarlock" in str(err.value)

    def test_unknown_attack_rejected_with_roster(self):
        with pytest.raises(ValueError) as err:
            ScenarioSpec(schemes=["sarlock"], attacks=("nope",))
        assert "appsat" in str(err.value)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="sharded"):
            ScenarioSpec(schemes=["sarlock"], engines=("warp",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ScenarioSpec(schemes=["sarlock"], efforts=())

    def test_cell_params_pickle_roundtrip(self):
        """Matrix cells must survive the process-pool boundary intact."""
        spec = ScenarioSpec(
            schemes=[("lut", {"spec": "tiny"})],
            attacks=[("appsat", STRICT_APPSAT)],
            circuits=("c880",),
            efforts=(2,),
            time_limit_per_task=60.0,
        )
        for task in spec.expand():
            clone = pickle.loads(pickle.dumps(task))
            assert clone.params == task.params
            assert clone.cache_key == task.cache_key
            # Params must stay canonical-JSON-able (the cache contract).
            assert canonical_json(clone.params) == canonical_json(task.params)


class TestRunMatrix:
    @pytest.fixture(scope="class")
    def small_matrix(self):
        spec = ScenarioSpec(
            schemes=[("sarlock", {"key_size": 3}), ("xor", {"key_size": 3})],
            attacks=("sat", "appsat"),
            engines=("sharded", "reference"),
            circuits=("c432",),
            scale=0.12,
            efforts=(1,),
            verify_composition=True,
        )
        return spec, run_matrix(spec)

    def test_grid_covers_every_cell(self, small_matrix):
        spec, result = small_matrix
        # sat runs on both engines, appsat on its single collapsed
        # reference cell: 2 schemes x (2 + 1).
        assert len(result.cells) == spec.size == 6
        assert all(cell.status == "ok" for cell in result.cells)
        assert all(cell.composition_equivalent for cell in result.cells)

    def test_engines_resolved_per_attack(self, small_matrix):
        _, result = small_matrix
        sharded_sat = result.cell(attack="sat", engine="sharded", scheme="sarlock")
        assert sharded_sat.engine_used == "sharded"
        appsat_cells = result.select(attack="appsat", scheme="sarlock")
        assert len(appsat_cells) == 1
        assert appsat_cells[0].engine == appsat_cells[0].engine_used == "reference"

    def test_engines_agree_on_dips(self, small_matrix):
        """SARLock #DIP is deterministic: engines must agree per cell."""
        _, result = small_matrix
        sharded = result.cell(attack="sat", engine="sharded", scheme="sarlock")
        reference = result.cell(attack="sat", engine="reference", scheme="sarlock")
        assert sharded.dips_per_task == reference.dips_per_task

    def test_format_lists_cells(self, small_matrix):
        _, result = small_matrix
        text = result.format()
        assert "Scenario matrix: 6 cells" in text
        for token in ("sarlock", "xor", "sat", "appsat", "pass"):
            assert token in text

    def test_csv_and_json_exports(self, small_matrix):
        import csv as csv_mod
        import io
        import json

        _, result = small_matrix
        rows = list(csv_mod.reader(io.StringIO(result.to_csv())))
        assert rows[0][0] == "scheme"
        assert len(rows) == 1 + len(result.cells)
        payload = json.loads(result.to_json())
        assert payload["spec"]["size"] == 6
        assert len(payload["cells"]) == 6
        assert payload["cells"][0]["status"] == "ok"

    def test_cache_replay_is_lossless(self, tmp_path):
        spec = ScenarioSpec(
            schemes=[("sarlock", {"key_size": 3})],
            attacks=("sat",),
            circuits=("c432",),
            scale=0.12,
            efforts=(0, 1),
        )
        cold = run_matrix(spec, runner=Runner(cache=ResultCache(tmp_path)))
        warm = run_matrix(spec, runner=Runner(cache=ResultCache(tmp_path)))
        assert warm.cells == cold.cells
        assert warm.format() == cold.format()

    def test_select_and_cell_filters(self, small_matrix):
        _, result = small_matrix
        assert len(result.select(scheme="sarlock")) == 3
        with pytest.raises(KeyError):
            result.cell(scheme="sarlock")  # ambiguous: 3 matches


class TestMultiKeyAppSat:
    """Acceptance: multi-key AppSAT recovers sub-space keys."""

    def test_sarlock_subspace_keys_with_parity(self):
        original = random_netlist(7, 45, seed=29)
        locked = sarlock_lock(original, 4, seed=3)
        appsat = multikey_attack(
            locked,
            original,
            effort=2,
            attack="appsat",
            attack_params=STRICT_APPSAT,
        )
        exact = multikey_attack(locked, original, effort=2)
        assert appsat.status == "ok"
        assert appsat.attack == "appsat"
        # Seeded parity: strict AppSAT converges through the same
        # deterministic DIP loop, so keys and #DIP match the exact
        # attack bit-for-bit.
        assert appsat.key_ints == exact.key_ints
        assert appsat.dips_per_task == exact.dips_per_task
        for task in appsat.subtasks:
            good = brute_force_keys(
                locked, Oracle(original), pin=task.assignment
            )
            assert task.key_int in good

    def test_lut_lock_subspace_keys_with_parity(self):
        original = random_netlist(8, 60, seed=31)
        locked = lock_circuit("lut", original, spec="tiny", seed=2)
        appsat = multikey_attack(
            locked,
            original,
            effort=2,
            attack="appsat",
            attack_params=STRICT_APPSAT,
        )
        exact = multikey_attack(locked, original, effort=2)
        assert appsat.status == "ok"
        assert appsat.key_ints == exact.key_ints
        assert verify_composition(
            locked, appsat.splitting_inputs, appsat.keys, original
        ).equivalent

    def test_settled_subtasks_count_as_success(self):
        """Loose AppSAT settles on SARLock (the known weakness) and the
        multi-key result reports ok — settling is AppSAT succeeding on
        its own terms."""
        original = random_netlist(7, 45, seed=29)
        locked = sarlock_lock(original, 4, seed=3)
        result = multikey_attack(
            locked,
            original,
            effort=1,
            attack="appsat",
            attack_params={
                "dips_per_round": 1,
                "queries_per_checkpoint": 16,
                "error_threshold": 0.5,
                "settle_rounds": 1,
            },
        )
        assert result.status == "ok"
        assert all(
            task.status in ("ok", "settled") for task in result.subtasks
        )

    def test_settled_cells_skip_cec(self):
        """CEC is an exact-key property: a verify-enabled cell whose
        AppSAT settled must report composition_equivalent=None (not a
        failure), keeping survey exit codes green."""
        spec = ScenarioSpec(
            schemes=[("sarlock", {"key_size": 4})],
            attacks=[
                (
                    "appsat",
                    {
                        "dips_per_round": 1,
                        "queries_per_checkpoint": 16,
                        "error_threshold": 0.5,
                        "settle_rounds": 1,
                    },
                )
            ],
            circuits=("c432",),
            scale=0.12,
            efforts=(1,),
            verify_composition=True,
        )
        result = run_matrix(spec)
        cell = result.cells[0]
        assert cell.status == "ok"
        assert cell.composition_equivalent is None


class TestAntisatMultiKey:
    """Anti-SAT ships in the repo; attack it through multikey_attack."""

    @pytest.fixture
    def setup(self):
        original = random_netlist(6, 35, seed=17)
        locked = lock_circuit("antisat", original, key_size=4, seed=5)
        return original, locked

    @pytest.mark.parametrize("engine", ["reference", "sharded"])
    def test_each_key_unlocks_its_subspace(self, setup, engine):
        original, locked = setup
        result = multikey_attack(locked, original, effort=2, engine=engine)
        assert result.status == "ok"
        assert len(result.subtasks) == 4
        for task in result.subtasks:
            good = brute_force_keys(
                locked, Oracle(original), pin=task.assignment
            )
            assert task.key_int in good

    def test_composition_equivalent(self, setup):
        original, locked = setup
        result = multikey_attack(locked, original, effort=2)
        assert verify_composition(
            locked, result.splitting_inputs, result.keys, original
        ).equivalent

    def test_antisat_matrix_cell(self, setup):
        spec = ScenarioSpec(
            schemes=[("antisat", {"key_size": 4})],
            attacks=("sat",),
            engines=("sharded",),
            circuits=("c432",),
            scale=0.12,
            efforts=(1,),
            verify_composition=True,
        )
        result = run_matrix(spec)
        cell = result.cells[0]
        assert cell.status == "ok"
        assert cell.key_size == 4
        assert cell.composition_equivalent is True


class TestTable1MatrixParity:
    """Acceptance: the matrix-backed Table 1 reproduces the classic
    driver's rows byte-for-byte."""

    def test_byte_for_byte_against_direct_driver(self):
        key_sizes, efforts = (3, 4), (0, 1, 2)
        circuit, scale, seed = "c432", 0.12, 0

        via_matrix = run_table1(
            key_sizes=key_sizes,
            efforts=efforts,
            circuit=circuit,
            scale=scale,
            seed=seed,
        )

        # The classic driver's semantics, inlined: lock per key size,
        # one multikey attack per (|K|, N) cell, same engine default.
        from repro.bench_circuits.iscas85 import iscas85_like

        direct = Table1Result(
            circuit=circuit,
            scale=scale,
            key_sizes=list(key_sizes),
            efforts=list(efforts),
        )
        for key_size in key_sizes:
            for effort in efforts:
                original = iscas85_like(circuit, scale)
                locked = sarlock_lock(original, key_size, seed=seed)
                attack = multikey_attack(
                    locked,
                    original,
                    effort=effort,
                    seed=seed,
                    engine="sharded",
                )
                dips = attack.dips_per_task
                direct.cells.append(
                    Table1Cell(
                        key_size=key_size,
                        effort=effort,
                        dips_per_task=dips,
                        uniform=len(set(dips)) == 1,
                        max_dips=max(dips) if dips else 0,
                        status=attack.status,
                    )
                )

        assert via_matrix.format() == direct.format()
        assert [
            (c.key_size, c.effort, c.dips_per_task, c.uniform, c.max_dips, c.status)
            for c in via_matrix.cells
        ] == [
            (c.key_size, c.effort, c.dips_per_task, c.uniform, c.max_dips, c.status)
            for c in direct.cells
        ]


class TestTable2MatrixParity:
    """The matrix-backed Table 2 matches the direct driver semantics on
    every deterministic column (timing columns are measurements and
    cannot be byte-compared across runs)."""

    def test_deterministic_fields_against_direct_driver(self):
        from repro.bench_circuits.iscas85 import iscas85_like
        from repro.experiments.table2 import run_table2
        from repro.locking.lut_lock import LutModuleSpec, lut_lock

        circuits, scale, effort, seed = ("c880", "c1355"), 0.2, 2, 1
        spec = LutModuleSpec.tiny()

        via_matrix = run_table2(
            circuits=circuits,
            scale=scale,
            spec=spec,
            effort=effort,
            parallel=False,
            time_limit_per_task=60.0,
            seed=seed,
        )

        direct = []
        for circuit in circuits:
            original = iscas85_like(circuit, scale)
            locked = lut_lock(original, spec, seed=seed)
            baseline = multikey_attack(
                locked, original, effort=0,
                time_limit_per_task=60.0, seed=seed,
            )
            attack = multikey_attack(
                locked, original, effort=effort,
                time_limit_per_task=60.0, seed=seed, engine="sharded",
            )
            direct.append(
                (
                    circuit,
                    baseline.status,
                    baseline.total_dips,
                    attack.status,
                    attack.dips_per_task,
                    bool(
                        verify_composition(
                            locked,
                            attack.splitting_inputs,
                            attack.keys,
                            original,
                        )
                    ),
                )
            )

        assert [
            (
                row.circuit,
                row.baseline_status,
                row.baseline_dips,
                row.multikey_status,
                row.dips_per_task,
                row.composition_equivalent,
            )
            for row in via_matrix.rows
        ] == direct
