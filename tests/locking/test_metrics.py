"""Corruption metric tests (the Fig. 1a machinery)."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.circuit.random_circuits import random_netlist
from repro.locking.metrics import (
    error_matrix,
    error_rate,
    format_error_matrix,
    keys_unlocking_subspace,
)
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock


def _fig1_circuit() -> Netlist:
    n = Netlist("fig1")
    n.add_inputs(["i0", "i1", "i2"])
    n.add_gate("t", GateType.XOR, ["i0", "i1"])
    n.add_gate("y", GateType.XOR, ["t", "i2"])
    n.set_outputs(["y"])
    return n


class TestErrorMatrix:
    def test_fig1a_exact(self):
        original = _fig1_circuit()
        locked = sarlock_lock(
            original, 3, correct_key=0b101, protected_inputs=["i0", "i1", "i2"]
        )
        matrix = error_matrix(locked, original)
        for i in range(8):
            for k in range(8):
                assert matrix[i][k] == ((i == k) and (k != 0b101))

    def test_correct_key_column_is_clean(self, small_circuit):
        locked = xor_lock(small_circuit, 3, seed=2)
        matrix = error_matrix(locked, small_circuit)
        k_star = locked.correct_key_int
        assert all(not row[k_star] for row in matrix)

    def test_too_wide_rejected(self):
        original = random_netlist(12, 30, seed=0)
        locked = xor_lock(original, 12, seed=0)
        with pytest.raises(ValueError):
            error_matrix(locked, original)

    def test_format_matrix(self):
        original = _fig1_circuit()
        locked = sarlock_lock(original, 3, correct_key=0b101)
        text = format_error_matrix(error_matrix(locked, original), key_width=3)
        assert "x" in text and "." in text
        assert len(text.splitlines()) == 9  # header + 8 input rows


class TestSubspaceKeys:
    def test_fig1a_msb_halves(self):
        original = _fig1_circuit()
        locked = sarlock_lock(
            original, 3, correct_key=0b101, protected_inputs=["i0", "i1", "i2"]
        )
        # Keys displayed MSB-first in the paper: 100,101,110,111 unlock
        # the MSB=0 half -> ints with bit2 set, i.e. {4,5,6,7}.
        msb0 = keys_unlocking_subspace(locked, original, {"i2": False})
        assert set(msb0) == {4, 5, 6, 7}
        msb1 = keys_unlocking_subspace(locked, original, {"i2": True})
        assert set(msb1) == {0, 1, 2, 3, 5}

    def test_empty_pin_yields_only_correct_keys(self):
        original = _fig1_circuit()
        locked = sarlock_lock(original, 3, correct_key=0b011)
        assert keys_unlocking_subspace(locked, original, {}) == [0b011]

    def test_unknown_pin_rejected(self):
        original = _fig1_circuit()
        locked = sarlock_lock(original, 3)
        with pytest.raises(ValueError):
            keys_unlocking_subspace(locked, original, {"zz": True})

    def test_subspace_set_grows_with_restriction(self, small_circuit):
        locked = sarlock_lock(small_circuit, 4, seed=1)
        full = keys_unlocking_subspace(locked, small_circuit, {})
        half = keys_unlocking_subspace(
            locked, small_circuit, {small_circuit.inputs[0]: False}
        )
        assert set(full) <= set(half)
        assert len(half) >= len(full)


class TestErrorRate:
    def test_correct_key_rate_zero_exhaustive(self, small_circuit):
        locked = xor_lock(small_circuit, 4, seed=9)
        assert error_rate(locked, small_circuit, locked.correct_key_int) == 0.0

    def test_correct_key_rate_zero_sampled(self, small_circuit):
        locked = xor_lock(small_circuit, 4, seed=9)
        rate = error_rate(
            locked, small_circuit, locked.correct_key_int, num_samples=512
        )
        assert rate == 0.0

    def test_sarlock_wrong_key_rate_is_pointlike(self, small_circuit):
        locked = sarlock_lock(small_circuit, 4, seed=3)
        wrong = locked.correct_key_int ^ 0b1
        rate = error_rate(locked, small_circuit, wrong)
        # exactly one of 2^4 protected patterns errs; inputs beyond the
        # protected ones don't affect the comparator.
        assert rate == pytest.approx(1 / 16)

    def test_xor_wrong_key_rate_large(self, small_circuit):
        locked = xor_lock(small_circuit, 4, seed=9)
        wrong = locked.correct_key_int ^ 0b1111
        assert error_rate(locked, small_circuit, wrong) > 0.25
