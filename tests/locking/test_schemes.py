"""Per-scheme locking tests: XOR, SARLock, Anti-SAT, LUT insertion."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import truth_table
from repro.locking.antisat import antisat_lock
from repro.locking.base import LockingError
from repro.locking.lut_lock import LutModuleSpec, lut_lock
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock


class TestXorLock:
    def test_correct_key_unlocks(self, small_circuit):
        lk = xor_lock(small_circuit, 5, seed=1)
        assert lk.verify_key(small_circuit, lk.correct_key).equivalent

    def test_wrong_keys_usually_corrupt(self, small_circuit):
        # XOR locking does not guarantee corruption for every wrong key
        # (two flipped wires can mask each other), but the large
        # majority of wrong keys must corrupt, and the correct key never.
        lk = xor_lock(small_circuit, 5, seed=1)
        tt_orig = truth_table(small_circuit)
        corrupting = 0
        for wrong in range(1, 32):
            keyed = lk.apply_key(lk.correct_key_int ^ wrong)
            tt_keyed = truth_table(keyed)
            if any(tt_orig[o] != tt_keyed[o] for o in small_circuit.outputs):
                corrupting += 1
        assert corrupting >= 24  # >= ~75% of the 31 wrong keys

    def test_key_count_bounded_by_gates(self):
        tiny = random_netlist(3, 4, seed=0)
        with pytest.raises(LockingError):
            xor_lock(tiny, 10)

    def test_explicit_correct_key(self, small_circuit):
        lk = xor_lock(small_circuit, 4, seed=2, correct_key=(1, 0, 1, 1))
        assert lk.correct_key == (1, 0, 1, 1)
        assert lk.verify_key(small_circuit, (1, 0, 1, 1)).equivalent

    def test_gate_count_grows_by_key_size(self, small_circuit):
        lk = xor_lock(small_circuit, 6, seed=3)
        assert lk.netlist.num_gates == small_circuit.num_gates + 6


class TestSarlock:
    def test_correct_key_unlocks(self, small_circuit):
        lk = sarlock_lock(small_circuit, 4, seed=5)
        assert lk.verify_key(small_circuit, lk.correct_key).equivalent

    def test_error_law(self, small_circuit):
        """Error iff protected-input pattern == key != k*."""
        from repro.locking.metrics import error_matrix

        lk = sarlock_lock(small_circuit.copy(), 3, correct_key=0b010)
        matrix = error_matrix(lk, small_circuit)
        protected = lk.meta["protected_inputs"]
        pos = {net: j for j, net in enumerate(lk.original_inputs)}
        for i in range(1 << len(lk.original_inputs)):
            restricted = 0
            for j, net in enumerate(protected):
                restricted |= ((i >> pos[net]) & 1) << j
            for k in range(8):
                expected = (restricted == k) and (k != 0b010)
                assert matrix[i][k] == expected

    def test_every_wrong_key_corrupts_exactly_one_pattern(self):
        original = random_netlist(4, 20, seed=8)
        lk = sarlock_lock(original, 4, correct_key=7)
        from repro.locking.metrics import error_matrix

        matrix = error_matrix(lk, original)
        for k in range(16):
            errors = sum(matrix[i][k] for i in range(16))
            assert errors == (0 if k == 7 else 1)

    def test_key_size_exceeding_inputs_rejected(self, small_circuit):
        with pytest.raises(LockingError):
            sarlock_lock(small_circuit, 20)

    def test_explicit_protected_inputs(self, small_circuit):
        protected = list(reversed(small_circuit.inputs[:4]))
        lk = sarlock_lock(small_circuit, 4, protected_inputs=protected)
        assert lk.meta["protected_inputs"] == protected
        assert lk.verify_key(small_circuit, lk.correct_key).equivalent

    def test_unknown_protected_input_rejected(self, small_circuit):
        with pytest.raises(LockingError):
            sarlock_lock(small_circuit, 2, protected_inputs=["pi0", "ghost"])

    def test_explicit_flip_output(self, small_circuit):
        target = small_circuit.outputs[-1]
        lk = sarlock_lock(small_circuit, 3, flip_output=target)
        assert lk.meta["flip_output"] == target
        assert lk.verify_key(small_circuit, lk.correct_key).equivalent


class TestAntisat:
    def test_any_equal_halves_key_is_correct(self, small_circuit):
        lk = antisat_lock(small_circuit, 4, seed=2)
        for half in (0b0000, 0b1010, 0b1111):
            key = half | (half << 4)
            assert lk.verify_key(small_circuit, key).equivalent

    def test_unequal_halves_corrupt_one_pattern(self):
        original = random_netlist(4, 20, seed=3)
        lk = antisat_lock(original, 3, seed=2)
        from repro.locking.metrics import error_matrix

        matrix = error_matrix(lk, original)
        for k in range(1 << 6):
            ka, kb = k & 0b111, k >> 3
            errors = sum(matrix[i][k] for i in range(16))
            if ka == kb:
                assert errors == 0
            else:
                assert errors >= 1

    def test_width_bounds(self, small_circuit):
        with pytest.raises(LockingError):
            antisat_lock(small_circuit, 0)
        with pytest.raises(LockingError):
            antisat_lock(small_circuit, 10)

    def test_key_size_is_2n(self, small_circuit):
        assert antisat_lock(small_circuit, 5).key_size == 10


class TestLutLock:
    def test_spec_key_bits(self):
        assert LutModuleSpec.tiny().key_bits == 24
        assert LutModuleSpec.small().key_bits == 48
        assert LutModuleSpec.paper_scale().key_bits == 160

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LutModuleSpec(stage1_width=0)
        with pytest.raises(ValueError):
            LutModuleSpec(num_stage1=9, stage2_width=4)
        with pytest.raises(ValueError):
            LutModuleSpec(stage2_width=9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_correct_key_unlocks(self, seed):
        original = random_netlist(8, 60, seed=40 + seed)
        lk = lut_lock(original, LutModuleSpec.tiny(), seed=seed)
        assert lk.verify_key(original, lk.correct_key).equivalent

    def test_key_size_matches_spec(self, small_circuit):
        spec = LutModuleSpec.tiny()
        lk = lut_lock(small_circuit, spec, seed=1)
        assert lk.key_size == spec.key_bits

    def test_no_key_inputs_used_as_lut_sources(self, small_circuit):
        lk = lut_lock(small_circuit, LutModuleSpec.tiny(), seed=1)
        assert not (set(lk.meta["module_source_nets"]) & set(lk.key_inputs))

    def test_netlist_remains_acyclic(self, small_circuit):
        lk = lut_lock(small_circuit, LutModuleSpec.tiny(), seed=4)
        lk.netlist.validate()

    def test_explicit_target(self, small_circuit):
        from repro.locking.lut_lock import _candidate_targets

        spec = LutModuleSpec.tiny()
        target = _candidate_targets(small_circuit, spec)[0]
        lk = lut_lock(small_circuit, spec, target=target)
        assert lk.meta["target"] == target
        assert lk.verify_key(small_circuit, lk.correct_key).equivalent

    def test_bad_target_rejected(self, small_circuit):
        with pytest.raises(LockingError):
            lut_lock(small_circuit, LutModuleSpec.tiny(), target="pi0")

    def test_flipped_truth_table_bit_changes_function(self):
        original = random_netlist(6, 40, seed=77)
        lk = lut_lock(original, LutModuleSpec.tiny(), seed=0)
        wrong = list(lk.correct_key)
        # Find a truth-table bit whose flip corrupts (some bits are
        # don't-cares for padded input combinations that can't occur —
        # so scan until corruption appears).
        corrupted = False
        for i in range(len(wrong)):
            candidate = list(lk.correct_key)
            candidate[i] ^= 1
            if not lk.verify_key(original, candidate).equivalent:
                corrupted = True
                break
        assert corrupted
