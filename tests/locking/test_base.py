"""LockedCircuit plumbing: key formats, apply_key, verification."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.locking.base import (
    LockedCircuit,
    LockingError,
    fresh_key_names,
    key_from_int,
    key_to_int,
    random_key,
)
from repro.locking.xor_lock import xor_lock


class TestKeyConversions:
    def test_round_trip(self):
        for value in (0, 1, 5, 255):
            assert key_to_int(key_from_int(value, 8)) == value

    def test_bit_order_lsb_first(self):
        assert key_from_int(0b01, 2) == (1, 0)
        assert key_to_int((1, 0)) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            key_from_int(4, 2)
        with pytest.raises(ValueError):
            key_from_int(-1, 2)

    def test_random_key_deterministic_by_seed(self):
        assert random_key(16, seed=3) == random_key(16, seed=3)
        assert len(random_key(16, seed=3)) == 16


class TestLockedCircuit:
    def _locked(self, small_circuit):
        return xor_lock(small_circuit, 4, seed=0)

    def test_key_size(self, small_circuit):
        assert self._locked(small_circuit).key_size == 4

    def test_key_assignment_from_int(self, small_circuit):
        lk = self._locked(small_circuit)
        asg = lk.key_assignment(0b1010)
        assert asg[lk.key_inputs[1]] is True
        assert asg[lk.key_inputs[0]] is False

    def test_key_assignment_from_bits(self, small_circuit):
        lk = self._locked(small_circuit)
        assert lk.key_assignment([1, 0, 0, 1])[lk.key_inputs[3]] is True

    def test_key_assignment_from_mapping(self, small_circuit):
        lk = self._locked(small_circuit)
        asg = {net: i % 2 == 0 for i, net in enumerate(lk.key_inputs)}
        assert lk.key_assignment(asg) == asg

    def test_wrong_width_rejected(self, small_circuit):
        lk = self._locked(small_circuit)
        with pytest.raises(ValueError):
            lk.key_assignment([1, 0])

    def test_apply_key_drops_key_ports(self, small_circuit):
        lk = self._locked(small_circuit)
        keyed = lk.apply_key(lk.correct_key)
        assert keyed.inputs == small_circuit.inputs
        assert keyed.outputs == small_circuit.outputs

    def test_verify_correct_key(self, small_circuit):
        lk = self._locked(small_circuit)
        assert lk.verify_key(small_circuit, lk.correct_key).equivalent

    def test_mismatched_key_width_rejected_at_construction(self, small_circuit):
        lk = self._locked(small_circuit)
        with pytest.raises(LockingError):
            LockedCircuit(
                netlist=lk.netlist,
                key_inputs=lk.key_inputs,
                correct_key=(0, 1),
                original_inputs=lk.original_inputs,
            )

    def test_missing_ports_rejected(self, small_circuit):
        lk = self._locked(small_circuit)
        with pytest.raises(LockingError):
            LockedCircuit(
                netlist=small_circuit,  # has no key ports
                key_inputs=lk.key_inputs,
                correct_key=lk.correct_key,
                original_inputs=lk.original_inputs,
            )

    def test_is_correct_interface(self, small_circuit):
        lk = self._locked(small_circuit)
        assert lk.is_correct_interface(small_circuit)


class TestFreshKeyNames:
    def test_avoids_collisions(self):
        n = Netlist()
        n.add_input("keyinput0")
        n.add_gate("keyinput2", GateType.NOT, ["keyinput0"])
        names = fresh_key_names(n, 3)
        assert "keyinput0" not in names
        assert "keyinput2" not in names
        assert len(set(names)) == 3
