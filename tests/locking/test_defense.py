"""Tests for the multi-key countermeasure (entangled SARLock)."""

import pytest

from repro.bdd.analysis import count_keys_unlocking_subspace
from repro.circuit.random_circuits import random_netlist
from repro.core.multikey import multikey_attack
from repro.core.compose import verify_composition
from repro.locking.base import LockingError
from repro.locking.defense import (
    entangled_sarlock,
    splitting_resistance,
)
from repro.locking.sarlock import sarlock_lock


class TestEntangledSarlock:
    def test_correct_key_unlocks(self, small_circuit):
        lk = entangled_sarlock(small_circuit, 4, seed=1)
        assert lk.verify_key(small_circuit, lk.correct_key).equivalent

    def test_wrong_key_corrupts(self, small_circuit):
        lk = entangled_sarlock(small_circuit, 4, seed=1)
        wrong = lk.correct_key_int ^ 0b11
        assert not lk.verify_key(small_circuit, wrong).equivalent

    def test_point_function_error_profile(self):
        from repro.bdd.analysis import exact_error_rate

        original = random_netlist(8, 40, seed=91)
        lk = entangled_sarlock(original, 5, seed=2)
        wrong = lk.correct_key_int ^ 1
        rate = exact_error_rate(lk, original, wrong)
        # Each wrong key errs on the inputs whose parities hit one
        # pattern: a 2^-|K| slice of the space.
        assert rate == pytest.approx(1 / 32)

    def test_explicit_key(self, small_circuit):
        lk = entangled_sarlock(small_circuit, 3, correct_key=0b101, seed=0)
        assert lk.correct_key_int == 0b101

    def test_too_few_inputs_rejected(self):
        from repro.circuit.netlist import Netlist

        tiny = Netlist()
        tiny.add_input("a")
        tiny.set_outputs(["a"])
        with pytest.raises(LockingError):
            entangled_sarlock(tiny, 2)


class TestDefenseEffectiveness:
    """The quantified claim: entanglement kills both attack levers."""

    def test_subspace_key_count_stays_one(self):
        original = random_netlist(8, 40, seed=92)
        defended = entangled_sarlock(original, 4, seed=3, resist_effort=2)
        baseline = sarlock_lock(original, 4, seed=3)

        pin = {net: False for net in original.inputs[:2]}
        defended_keys = count_keys_unlocking_subspace(defended, original, pin)
        baseline_keys = count_keys_unlocking_subspace(baseline, original, pin)
        # Plain SARLock: pinning 2 protected bits lets 2^4 - 2^2 extra
        # keys through.  The entangled variant admits only k*.
        assert baseline_keys > 1
        assert defended_keys == 1

    def test_splitting_resistance_report(self):
        original = random_netlist(8, 40, seed=93)
        defended = entangled_sarlock(original, 4, seed=3, resist_effort=2)
        baseline = sarlock_lock(original, 4, seed=3)
        r_defended = splitting_resistance(defended, original, effort=2)
        r_baseline = splitting_resistance(baseline, original, effort=2)
        assert r_defended.key_inflation == 0
        assert r_baseline.key_inflation > 0
        assert 0.0 <= r_defended.gate_reduction <= 1.0

    def test_multikey_attack_still_sound_but_not_cheaper(self):
        """The attack still *works* on the defended circuit (keys per
        sub-space compose fine) — it just stops being cheaper: every
        sub-task needs the full 2^|K| - 1 DIPs."""
        original = random_netlist(8, 40, seed=94)
        defended = entangled_sarlock(original, 4, seed=5, resist_effort=2)
        baseline_run = multikey_attack(defended, original, effort=0)
        split_run = multikey_attack(defended, original, effort=2)
        assert split_run.status == "ok"
        assert verify_composition(
            defended, split_run.splitting_inputs, split_run.keys, original
        ).equivalent
        # No DIP reduction: the comparator never simplifies.
        assert max(split_run.dips_per_task) >= baseline_run.total_dips
