"""Metrics as a matrix axis: spec levers, dedup, parity, warm replay.

The acceptance contract: ``--metrics corruption`` columns are
byte-identical across lanes backends, opt levels, both multi-key
engines, and a warm cache replay — one ``corruption_cell`` task per
(scheme, circuit, effort, seed) point, shared by every attack/engine
cell that lands on it.
"""

import pytest

from repro.metrics import evaluate_corruption
from repro.bench_circuits.iscas85 import c17
from repro.circuit.lanes import numpy_available
from repro.locking.registry import lock_circuit
from repro.runner import ResultCache, Runner
from repro.scenarios import ScenarioSpec, run_matrix

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy lane backend not installed"
)


def small_spec(**overrides):
    base = dict(
        schemes=[("sarlock", {"key_size": 3})],
        attacks=("sat",),
        engines=("sharded", "reference"),
        circuits=("c432",),
        scale=0.12,
        efforts=(1,),
        seeds=(0,),
        metrics=("corruption", "subspace"),
        key_samples=0,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecLevers:
    def test_metrics_levers_validate(self):
        with pytest.raises(ValueError, match="corruption"):
            small_spec(metrics=("nope",)).validate()
        with pytest.raises(ValueError, match="key_samples"):
            small_spec(key_samples=-1).validate()

    def test_metrics_tasks_dedupe_across_attack_and_engine_axes(self):
        spec = small_spec(attacks=("sat", "brute_force"))
        # 3 attack/engine cells (sat x 2 engines + brute_force) but one
        # metric point: scheme x circuit x effort x seed.
        assert spec.size == 3
        assert spec.metrics_size == 1
        assert spec.total_tasks == 4
        tasks = spec.expand_metrics()
        assert len(tasks) == 1
        assert tasks[0].kind == "corruption_cell"

    def test_metrics_levers_survive_payload_round_trip(self):
        spec = small_spec(metrics_seed=7)
        clone = ScenarioSpec.from_payload(spec.describe())
        assert tuple(clone.metrics) == ("corruption", "subspace")
        assert clone.key_samples == 0
        assert clone.metrics_seed == 7

    def test_no_metrics_means_no_extra_tasks_or_columns(self):
        spec = small_spec(metrics=())
        assert spec.metrics_size == 0
        assert spec.total_tasks == spec.size
        result = run_matrix(spec, runner=Runner())
        assert "metric_corruption" not in result.csv_columns()
        assert result.cells[0].metrics is None


class TestMatrixMetrics:
    @pytest.fixture(scope="class")
    def result(self):
        return run_matrix(small_spec(), runner=Runner())

    def test_every_cell_carries_the_shared_metric_values(self, result):
        assert len(result.cells) == 2  # sharded + reference
        a, b = result.cells
        assert a.metrics is not None and b.metrics is not None
        assert a.metrics == b.metrics  # same corruption_cell artifact
        assert a.metrics_detail == b.metrics_detail
        assert a.key_samples == 0
        assert 0.0 < a.metrics["corruption"] <= 1.0

    def test_matrix_values_match_direct_evaluation(self, result):
        from repro.bench_circuits.corpus import resolve_circuit

        original = resolve_circuit("c432", 0.12)
        locked = lock_circuit("sarlock", original, key_size=3, seed=0)
        direct = evaluate_corruption(
            locked,
            original,
            metrics=("corruption", "subspace"),
            key_samples=0,
            effort=1,
        )
        cell = result.cells[0]
        assert cell.metrics["corruption"] == direct.value("corruption")
        assert cell.metrics["subspace"] == direct.value("subspace")

    def test_csv_has_metric_columns(self, result):
        csv_text = result.to_csv()
        header = csv_text.splitlines()[0]
        assert "metric_corruption" in header
        assert "metric_subspace" in header
        assert "key_samples" in header

    def test_format_shows_metric_columns(self, result):
        assert "corruption" in result.format()

    @staticmethod
    def _metric_columns(result):
        """The CSV restricted to its metric-derived columns."""
        import csv
        import io

        keep = ["key_samples", "metrics_seed"] + [
            c for c in result.csv_columns() if c.startswith("metric_")
        ]
        rows = csv.DictReader(io.StringIO(result.to_csv()))
        return [[row[c] for c in keep] for row in rows]

    def test_warm_replay_is_byte_identical(self, tmp_path, result):
        spec = small_spec()
        cold = run_matrix(spec, runner=Runner(cache=ResultCache(tmp_path)))
        warm = run_matrix(spec, runner=Runner(cache=ResultCache(tmp_path)))
        # Replayed artifacts are the cold run's bytes: full CSV equal.
        assert cold.to_csv() == warm.to_csv()
        # Across independent runs the timing columns move; the metric
        # columns never do.
        assert self._metric_columns(cold) == self._metric_columns(result)

    @needs_numpy
    def test_lanes_backends_agree_through_the_matrix(
        self, result, monkeypatch
    ):
        # The lanes lever reaches corruption_cell workers through the
        # process-wide default, never the cache key.
        monkeypatch.setenv("REPRO_LANES", "numpy")
        numpy_result = run_matrix(small_spec(), runner=Runner())
        assert self._metric_columns(numpy_result) == self._metric_columns(
            result
        )

    def test_opt_levels_agree_through_the_matrix(self, result):
        opt_result = run_matrix(small_spec(opt="full"), runner=Runner())
        for cell, base in zip(opt_result.cells, result.cells):
            assert cell.metrics == base.metrics

    def test_json_round_trip_preserves_metrics(self, result):
        from repro.scenarios.matrix import MatrixResult

        clone = MatrixResult.from_payload(result.to_payload())
        assert clone.to_csv() == result.to_csv()
        assert clone.cells[0].metrics == result.cells[0].metrics
