"""Service envelopes, figure2 driver, and CLI surface for metrics."""

import pytest

from repro.service import (
    EnvelopeError,
    MatrixRequest,
    MetricsRequest,
    Service,
    from_json,
    render_response,
    to_json,
)

_TINY = dict(
    circuit="c432",
    scheme="sarlock",
    scheme_params={"key_size": 3},
    scale=0.12,
    key_samples=0,
    effort=1,
)


class TestMetricsRequest:
    def test_round_trips_through_the_wire(self):
        request = MetricsRequest(
            metrics=["corruption", "subspace"], **_TINY
        )
        assert from_json(to_json(request)) == request

    def test_unknown_metric_fails_fast_with_the_roster(self):
        # Registry rosters propagate as the registries' own ValueError.
        with pytest.raises(ValueError, match="corruption"):
            MetricsRequest(metrics=["nope"], **_TINY)

    def test_unknown_scheme_fails_fast_with_the_roster(self):
        with pytest.raises(ValueError, match="sarlock"):
            MetricsRequest(circuit="c432", scheme="nope")

    def test_negative_key_samples_rejected(self):
        with pytest.raises(EnvelopeError, match="key_samples"):
            MetricsRequest(circuit="c432", scheme="sarlock", key_samples=-1)

    def test_matrix_request_threads_metrics_levers(self):
        request = MatrixRequest(
            schemes=[["sarlock", {"key_size": 3}]],
            circuits=["c432"],
            scale=0.12,
            efforts=[1],
            metrics=["corruption"],
            key_samples=0,
            metrics_seed=5,
        )
        spec = request.to_spec()
        assert tuple(spec.metrics) == ("corruption",)
        assert spec.key_samples == 0
        assert spec.metrics_seed == 5
        assert from_json(to_json(request)) == request


class TestMetricsJobs:
    def test_metrics_job_matches_direct_evaluation(self):
        from repro.bench_circuits.corpus import resolve_circuit
        from repro.locking.registry import lock_circuit
        from repro.metrics import CorruptionReport, evaluate_corruption

        request = MetricsRequest(
            metrics=["corruption", "bit_flip"], **_TINY
        )
        job = Service().submit(request)
        events = list(job.events())
        assert events[0].type == "job_started"
        assert events[0].data["kind"] == "metrics"
        response = job.result()
        assert response.status == "ok"
        assert from_json(to_json(response)) == response

        report = CorruptionReport.from_payload(response.result["report"])
        original = resolve_circuit("c432", 0.12)
        locked = lock_circuit("sarlock", original, key_size=3, seed=0)
        direct = evaluate_corruption(
            locked,
            original,
            metrics=("corruption", "bit_flip"),
            key_samples=0,
            effort=1,
        )
        assert report.metrics == direct.metrics
        # The rendered text is the report's own table.
        rendered = render_response(response)
        assert "corruption" in rendered and "sarlock" in rendered

    def test_matrix_job_with_metrics_counts_metric_tasks(self):
        request = MatrixRequest(
            schemes=[["sarlock", {"key_size": 3}]],
            circuits=["c432"],
            scale=0.12,
            efforts=[1],
            metrics=["corruption"],
            key_samples=0,
        )
        job = Service().submit(request)
        events = list(job.events())
        started = next(e for e in events if e.type == "job_started")
        assert started.data["total"] == request.to_spec().total_tasks == 2
        response = job.result()
        assert response.status == "ok"
        cells = response.result["cells"]
        assert cells[0]["metrics"]["corruption"] > 0.0


class TestFigure2:
    def test_rows_match_direct_evaluation(self):
        from repro.bench_circuits.corpus import resolve_circuit
        from repro.experiments.figure2 import run_figure2
        from repro.locking.registry import lock_circuit
        from repro.metrics import evaluate_corruption

        result = run_figure2(
            circuit="c432",
            key_size=3,
            scale=0.12,
            efforts=(0, 1),
            key_samples=0,
        )
        assert [row.num_subspaces for row in result.rows] == [1, 2]
        original = resolve_circuit("c432", 0.12)
        locked = lock_circuit("sarlock", original, key_size=3, seed=0)
        for row in result.rows:
            direct = evaluate_corruption(
                locked,
                original,
                metrics=("corruption", "subspace"),
                key_samples=0,
                effort=row.effort,
            )
            assert row.corruption == direct.value("corruption")
            assert row.subspace_rate == direct.value("subspace")
            assert row.unlock_fraction == (
                direct.detail("subspace")["unlock_fraction"]
            )
        assert "sub-spaces" in result.format() or "N" in result.format()

    def test_service_figure2_round_trips(self):
        from repro.experiments.figure2 import Figure2Result, run_figure2
        from repro.service import ExperimentRequest

        request = ExperimentRequest(
            experiment="figure2",
            params={
                "circuit": "c432",
                "key_size": 3,
                "scale": 0.12,
                "efforts": [0, 1],
                "key_samples": 0,
            },
        )
        response = Service().run(request)
        assert response.status == "ok"
        rebuilt = Figure2Result.from_payload(response.result["result"])
        direct = run_figure2(
            circuit="c432", key_size=3, scale=0.12, efforts=(0, 1),
            key_samples=0,
        )
        assert rebuilt.rows == direct.rows
        assert render_response(response) == direct.format()


class TestCli:
    def test_metrics_command(self, capsys):
        from repro.cli import main

        assert main([
            "metrics", "--circuit", "c432", "--scheme", "sarlock",
            "--key-size", "3", "--scale", "0.12", "--key-samples", "0",
            "-N", "1", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "corruption" in out and "subspace" in out

    def test_figure2_command(self, capsys):
        from repro.cli import main

        assert main([
            "figure2", "--key-size", "3", "--scale", "0.12",
            "--efforts", "0,1", "--key-samples", "0", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "2" in out

    def test_matrix_list_metrics_and_circuits(self, capsys):
        from repro.cli import main

        assert main(["matrix", "--list-metrics", "--list-circuits"]) == 0
        out = capsys.readouterr().out
        for name in ("corruption", "bit_flip", "avalanche", "subspace"):
            assert name in out
        assert "c17" in out and "c432" in out

    def test_matrix_metrics_csv(self, capsys, tmp_path):
        from repro.cli import main

        csv_path = tmp_path / "metrics.csv"
        assert main([
            "matrix", "--schemes", "sarlock", "--attacks", "sat",
            "--circuits", "c432", "--scale", "0.12", "--key-size", "3",
            "--efforts", "1", "--metrics", "corruption",
            "--key-samples", "0", "--no-cache", "--quiet",
            "--csv", str(csv_path),
        ]) == 0
        header = csv_path.read_text().splitlines()[0]
        assert "metric_corruption" in header
