"""Metric registry semantics: roster, lookup errors, plug-in seam."""

import pytest

from repro.metrics import (
    MetricValue,
    metric_info,
    register_metric,
    registered_metrics,
)
from repro.metrics.registry import _METRICS


class TestRoster:
    def test_core_roster_is_registered(self):
        names = registered_metrics()
        for name in ("corruption", "bit_flip", "avalanche", "subspace"):
            assert name in names
        assert names == sorted(names)

    def test_every_metric_has_a_description(self):
        for name in registered_metrics():
            assert metric_info(name).description

    def test_unknown_metric_error_names_the_roster(self):
        with pytest.raises(ValueError, match="corruption"):
            metric_info("nope")


class TestRegistration:
    def test_duplicate_name_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_metric("corruption")
            def clash(sweep):  # pragma: no cover - never called
                return MetricValue(0.0, {})

    def test_plugin_metric_round_trips(self):
        @register_metric("test_only_width", description="sweep width")
        def width_metric(sweep):
            return MetricValue(float(sweep.width), {})

        try:
            info = metric_info("test_only_width")
            assert info.fn is width_metric
            assert info.description == "sweep width"
        finally:
            del _METRICS["test_only_width"]

    def test_metric_value_is_frozen(self):
        value = MetricValue(0.5, {"per_key": [0.5]})
        with pytest.raises(AttributeError):
            value.value = 1.0
