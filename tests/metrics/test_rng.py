"""``repro.rng`` — shared seed derivation and deterministic streams.

The migration contract is load-bearing: a bare non-negative int must
pass through :func:`derive_seed` unchanged so the historical
``random.Random(seed)`` streams in appsat / random-circuit generation
stay bit-for-bit after the ``make_rng`` migration.
"""

import random

import pytest

from repro.rng import derive_seed, make_rng, sample_wrong_keys, shuffled


class TestDeriveSeed:
    def test_bare_int_passthrough(self):
        for seed in (0, 1, 7, 2**40):
            assert derive_seed(seed) == seed

    def test_structured_parts_are_deterministic(self):
        assert derive_seed("metrics", "keys", 3, 0) == derive_seed(
            "metrics", "keys", 3, 0
        )

    def test_distinct_parts_decorrelate(self):
        seeds = {
            derive_seed("metrics", "keys", 3, s) for s in range(32)
        }
        assert len(seeds) == 32

    def test_negative_int_hashes_instead_of_passing_through(self):
        assert derive_seed(-1) >= 0
        assert derive_seed(-1) != -1

    def test_fits_in_63_bits(self):
        assert derive_seed("a", "b", "c") < 1 << 63


class TestMakeRng:
    def test_bare_int_stream_matches_random_random(self):
        # The exact promise appsat/random_circuits rely on.
        ours = make_rng(42)
        theirs = random.Random(42)
        assert [ours.getrandbits(64) for _ in range(8)] == [
            theirs.getrandbits(64) for _ in range(8)
        ]

    def test_structured_streams_are_reproducible(self):
        a = make_rng("metrics", "stimuli", 5)
        b = make_rng("metrics", "stimuli", 5)
        assert a.random() == b.random()


class TestSampleWrongKeys:
    def test_exhaustive_when_count_zero(self):
        keys = sample_wrong_keys(3, 0, correct_key=5, )
        assert keys == [0, 1, 2, 3, 4, 6, 7]

    def test_exhaustive_when_space_fits(self):
        keys = sample_wrong_keys(2, 10, correct_key=0)
        assert keys == [1, 2, 3]

    def test_sampled_keys_are_wrong_unique_and_in_range(self):
        keys = sample_wrong_keys(16, 40, correct_key=1234, )
        assert len(keys) == 40
        assert len(set(keys)) == 40
        assert 1234 not in keys
        assert all(0 <= k < 1 << 16 for k in keys)

    def test_sampling_is_deterministic_in_the_parts(self):
        a = sample_wrong_keys(16, 8, 0, "metrics", "keys", 16, 3)
        b = sample_wrong_keys(16, 8, 0, "metrics", "keys", 16, 3)
        c = sample_wrong_keys(16, 8, 0, "metrics", "keys", 16, 4)
        assert a == b
        assert a != c


class TestShuffled:
    def test_is_a_permutation_and_leaves_input_alone(self):
        items = list(range(20))
        out = shuffled(items, "loadgen", 0)
        assert sorted(out) == items
        assert items == list(range(20))  # input untouched

    def test_deterministic_per_seed(self):
        items = list(range(20))
        assert shuffled(items, "loadgen", 0) == shuffled(items, "loadgen", 0)
        assert shuffled(items, "loadgen", 0) != shuffled(items, "loadgen", 1)
