"""Corruption engine: exhaustive ground truth and lever parity.

Ground truth comes from circuits small enough to check by hand (a
single XOR gate; SARLock's one-error-per-key point function) and from
:func:`repro.locking.metrics.error_rate`, the pre-existing exhaustive
reference.  Parity is the subsystem's contract: every metric value is
bit-identical across lanes backends and opt levels, because the levers
change how the sweep runs, never which bits it produces.
"""

import pytest

from repro.bench_circuits.iscas85 import c17
from repro.circuit.gates import GateType
from repro.circuit.lanes import numpy_available
from repro.circuit.netlist import Netlist
from repro.locking.metrics import error_rate
from repro.locking.registry import lock_circuit
from repro.metrics import CorruptionReport, evaluate_corruption
from repro.metrics.engine import build_sweep

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy lane backend not installed"
)

ALL_METRICS = ("corruption", "bit_flip", "avalanche", "subspace")


def single_xor_netlist() -> Netlist:
    netlist = Netlist("one_xor")
    a, b = netlist.add_inputs(["a", "b"])
    netlist.add_gate("y", GateType.XOR, [a, b])
    netlist.set_outputs(["y"])
    return netlist


class TestExhaustiveGroundTruth:
    def test_single_xor_gate_wrong_key_flips_everything(self):
        # One XOR key gate on the only wire: the wrong key inverts the
        # output on every pattern, so corruption is exactly 1.0 and the
        # flip rate is a deterministic coin with zero entropy.
        original = single_xor_netlist()
        locked = lock_circuit("xor", original, key_size=1, seed=0)
        report = evaluate_corruption(
            locked, original, metrics=ALL_METRICS, key_samples=0
        )
        assert report.exhaustive_inputs and report.exhaustive_keys
        assert report.keys_sampled == 1
        assert report.value("corruption") == 1.0
        assert report.value("bit_flip") == 1.0
        assert report.value("avalanche") == 0.0
        assert report.detail("subspace")["unlock_fraction"] == 0.0

    def test_sarlock_point_function_rate_is_exact(self):
        # SARLock's defining property: each wrong key errs on exactly
        # one of the 2^k comparator patterns.
        original = c17()
        locked = lock_circuit("sarlock", original, key_size=3, seed=2)
        report = evaluate_corruption(
            locked, original, metrics=ALL_METRICS, key_samples=0
        )
        assert report.keys_sampled == 7
        assert report.value("corruption") == pytest.approx(1 / 8)
        per_key = report.detail("corruption")["per_key"]
        assert per_key == [1 / 8] * 7

    def test_per_key_rates_match_locking_metrics_error_rate(self):
        original = c17()
        locked = lock_circuit("sarlock", original, key_size=3, seed=2)
        sweep, _ = build_sweep(locked, original, key_samples=0)
        report = evaluate_corruption(locked, original, key_samples=0)
        per_key = report.detail("corruption")["per_key"]
        for key, rate in zip(sweep.wrong_keys, per_key):
            assert rate == error_rate(locked, original, key)

    def test_sarlock_subspaces_split_the_errors(self):
        # At N=1 each wrong key's single error pattern lives in exactly
        # one of the two sub-spaces: the other is unlocked exactly.
        original = c17()
        locked = lock_circuit("sarlock", original, key_size=3, seed=2)
        report = evaluate_corruption(
            locked, original, metrics=("subspace",), key_samples=0, effort=1
        )
        detail = report.detail("subspace")
        assert detail["num_subspaces"] == 2
        assert len(detail["splitting_inputs"]) == 1
        assert detail["unlock_fraction"] == pytest.approx(0.5)

    def test_report_payload_round_trips(self):
        original = c17()
        locked = lock_circuit("xor", original, key_size=2, seed=1)
        report = evaluate_corruption(
            locked, original, metrics=ALL_METRICS, key_samples=0
        )
        clone = CorruptionReport.from_payload(report.to_payload())
        assert clone.metrics == report.metrics
        assert clone.value("corruption") == report.value("corruption")
        with pytest.raises(KeyError, match="computed"):
            report.value("not_computed")


class TestLeverParity:
    """Metrics are bit-identical across every execution lever."""

    @pytest.fixture(scope="class")
    def locked_pair(self):
        original = c17()
        return lock_circuit("sarlock", original, key_size=3, seed=2), original

    def _metrics(self, locked_pair, **kwargs):
        locked, original = locked_pair
        return evaluate_corruption(
            locked, original, metrics=ALL_METRICS, key_samples=0, **kwargs
        ).metrics

    def test_python_lanes_match_default(self, locked_pair):
        assert self._metrics(locked_pair) == self._metrics(
            locked_pair, lanes="python"
        )

    @needs_numpy
    def test_numpy_lanes_match_python(self, locked_pair):
        assert self._metrics(locked_pair, lanes="numpy") == self._metrics(
            locked_pair, lanes="python"
        )

    @pytest.mark.parametrize("opt", ["light", "full"])
    def test_opt_levels_match_off(self, locked_pair, opt):
        assert self._metrics(locked_pair, opt=opt) == self._metrics(
            locked_pair, opt="off"
        )

    @needs_numpy
    @pytest.mark.parametrize("effort", [0, 1, 2])
    def test_sampled_sweep_parity_across_lanes(self, effort):
        # 14 inputs > EXHAUSTIVE_INPUT_LIMIT: the stratified sampled
        # path, not the exhaustive one.
        from repro.circuit.random_circuits import random_netlist

        original = random_netlist(14, 60, seed=1)
        locked = lock_circuit("xor", original, key_size=6, seed=0)
        kwargs = dict(
            metrics=ALL_METRICS,
            key_samples=8,
            effort=effort,
            input_samples=64,
        )
        a = evaluate_corruption(locked, original, lanes="python", **kwargs)
        b = evaluate_corruption(locked, original, lanes="numpy", **kwargs)
        assert a.exhaustive_inputs is False
        assert a.metrics == b.metrics

    def test_seed_changes_sampled_streams(self):
        # XOR lock: per-key corruption varies with the key, so a
        # different wrong-key sample shows up in the metric values.
        original = c17()
        locked = lock_circuit("xor", original, key_size=6, seed=0)
        a = evaluate_corruption(locked, original, key_samples=4, seed=0)
        b = evaluate_corruption(locked, original, key_samples=4, seed=1)
        assert a.metrics != b.metrics  # different wrong-key samples

    def test_input_samples_must_cover_subspaces(self):
        original = c17()
        locked = lock_circuit("sarlock", original, key_size=3, seed=2)
        with pytest.raises(ValueError, match="input_samples must be positive"):
            evaluate_corruption(locked, original, input_samples=0)
