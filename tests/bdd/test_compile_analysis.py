"""BDD compilation and locking-analysis tests."""

import pytest
from hypothesis import given, strategies as st

from repro.bdd.analysis import (
    bdd_equivalence_check,
    count_keys_unlocking_subspace,
    exact_error_rate,
)
from repro.bdd.compile import compile_netlist
from repro.circuit.random_circuits import random_netlist
from repro.circuit.simulator import truth_table
from repro.locking.metrics import error_rate, keys_unlocking_subspace
from repro.locking.sarlock import sarlock_lock
from repro.locking.xor_lock import xor_lock
from repro.oracle.oracle import Oracle
from repro.attacks.brute_force import brute_force_keys


class TestCompile:
    @given(seed=st.integers(0, 5_000))
    def test_matches_truth_table(self, seed):
        netlist = random_netlist(5, 25, seed=seed, allow_const=True)
        manager, outs, levels = compile_netlist(netlist)
        tables = truth_table(netlist)
        for pattern in range(32):
            assignment = {
                levels[net]: bool((pattern >> j) & 1)
                for j, net in enumerate(netlist.inputs)
            }
            for out in netlist.outputs:
                assert manager.evaluate(outs[out], assignment) == bool(
                    (tables[out] >> pattern) & 1
                )

    def test_custom_order(self):
        netlist = random_netlist(4, 12, seed=3)
        order = list(reversed(netlist.inputs))
        manager, outs, levels = compile_netlist(netlist, input_order=order)
        assert levels[order[0]] == 0

    def test_bad_order_rejected(self):
        netlist = random_netlist(3, 8, seed=1)
        with pytest.raises(ValueError):
            compile_netlist(netlist, input_order=["pi0"])


class TestEquivalence:
    def test_equivalent_after_synthesis(self, small_circuit):
        from repro.synth.optimize import synthesize

        optimized = synthesize(small_circuit).netlist
        assert bdd_equivalence_check(small_circuit, optimized)

    def test_detects_difference(self, small_circuit):
        from repro.circuit.gates import GateType, inverted_type
        from repro.circuit.netlist import Gate

        other = small_circuit.copy()
        out = other.outputs[0]
        gate = other.gates[out]
        inv = inverted_type(gate.gtype) or GateType.NOT
        if inv is GateType.NOT:
            return
        other.gates[out] = Gate(out, inv, gate.inputs)
        assert not bdd_equivalence_check(small_circuit, other)

    def test_agrees_with_sat_cec(self, small_circuit):
        from repro.circuit.equivalence import check_equivalence
        from repro.synth.simplify import rewrite

        other = rewrite(small_circuit)
        assert bdd_equivalence_check(small_circuit, other) == bool(
            check_equivalence(small_circuit, other)
        )


class TestExactErrorRate:
    def test_matches_exhaustive_metric(self):
        original = random_netlist(6, 30, seed=71)
        locked = xor_lock(original, 4, seed=2)
        for key in (locked.correct_key_int, locked.correct_key_int ^ 5):
            exact = exact_error_rate(locked, original, key)
            sampled = error_rate(locked, original, key)  # exhaustive here
            assert exact == pytest.approx(sampled)

    def test_correct_key_is_zero(self):
        original = random_netlist(6, 30, seed=72)
        locked = sarlock_lock(original, 4, seed=1)
        assert exact_error_rate(locked, original, locked.correct_key_int) == 0.0

    def test_sarlock_point_function(self):
        original = random_netlist(8, 40, seed=73)
        locked = sarlock_lock(original, 6, seed=1)
        wrong = locked.correct_key_int ^ 1
        # exactly one of the 2^6 protected patterns errs.
        assert exact_error_rate(locked, original, wrong) == pytest.approx(
            1 / 64
        )


class TestExactKeyCounting:
    def test_matches_brute_force(self):
        original = random_netlist(5, 25, seed=74)
        locked = sarlock_lock(original, 4, seed=3)
        pin = {original.inputs[0]: False}
        exact = count_keys_unlocking_subspace(locked, original, pin)
        brute = brute_force_keys(locked, Oracle(original), pin=pin)
        assert exact == len(brute)

    def test_full_space_sarlock_has_one_key(self):
        original = random_netlist(5, 25, seed=75)
        locked = sarlock_lock(original, 4, seed=3)
        assert count_keys_unlocking_subspace(locked, original) == 1

    def test_beyond_brute_force_scale(self):
        """12 protected bits + 12 key bits + 20 free inputs: far beyond
        the 22-bit brute-force cap, exact via BDDs.  Pinning p of the
        protected inputs leaves 2^p keys able to err, so the unlock
        count is 2^|K| - 2^(|K|-p) + 1."""
        original = random_netlist(20, 60, seed=76)
        locked = sarlock_lock(original, 12, seed=4)
        pinned = {net: False for net in locked.meta["protected_inputs"][:4]}
        count = count_keys_unlocking_subspace(locked, original, pinned)
        assert count == 2**12 - 2**8 + 1

    def test_matches_metric_module(self):
        original = random_netlist(5, 20, seed=77)
        locked = xor_lock(original, 3, seed=1)
        pin = {original.inputs[1]: True}
        exact = count_keys_unlocking_subspace(locked, original, pin)
        listed = keys_unlocking_subspace(locked, original, pin)
        assert exact == len(listed)

    def test_unknown_pin_rejected(self):
        original = random_netlist(5, 20, seed=78)
        locked = xor_lock(original, 3, seed=1)
        with pytest.raises(ValueError):
            count_keys_unlocking_subspace(locked, original, {"nope": True})
