"""BDD manager unit and property tests."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.bdd.manager import FALSE, TRUE, BddManager


@pytest.fixture
def mgr3():
    m = BddManager()
    for _ in range(3):
        m.new_var()
    return m


class TestBasics:
    def test_terminals(self, mgr3):
        assert mgr3.apply_and(TRUE, TRUE) == TRUE
        assert mgr3.apply_and(TRUE, FALSE) == FALSE
        assert mgr3.apply_or(FALSE, FALSE) == FALSE

    def test_var_and_negation(self, mgr3):
        x = mgr3.var(0)
        nx = mgr3.nvar(0)
        assert mgr3.apply_not(x) == nx
        assert mgr3.apply_and(x, nx) == FALSE
        assert mgr3.apply_or(x, nx) == TRUE

    def test_canonicity(self, mgr3):
        x, y = mgr3.var(0), mgr3.var(1)
        a = mgr3.apply_and(x, y)
        b = mgr3.apply_and(y, x)
        assert a == b  # same function -> same node

    def test_undeclared_level_rejected(self, mgr3):
        with pytest.raises(ValueError):
            mgr3.var(5)

    def test_node_limit(self):
        m = BddManager(max_nodes=8)
        for _ in range(6):
            m.new_var()
        with pytest.raises(MemoryError):
            f = FALSE
            for level in range(6):
                f = m.apply_xor(f, m.var(level))

    def test_evaluate(self, mgr3):
        x, y, z = (mgr3.var(i) for i in range(3))
        f = mgr3.apply_or(mgr3.apply_and(x, y), z)
        assert mgr3.evaluate(f, {0: True, 1: True, 2: False})
        assert not mgr3.evaluate(f, {0: True, 1: False, 2: False})

    def test_size(self, mgr3):
        x, y = mgr3.var(0), mgr3.var(1)
        assert mgr3.size(x) == 1
        # No complement edges: XOR = (x ? !y : y) is 3 nodes.
        assert mgr3.size(mgr3.apply_xor(x, y)) == 3


class TestSemantics:
    """Exhaustive comparison against Python lambdas on 3 variables."""

    FUNCS = [
        ("and", lambda a, b, c: a and b, lambda m, x, y, z: m.apply_and(x, y)),
        ("or", lambda a, b, c: a or c, lambda m, x, y, z: m.apply_or(x, z)),
        ("xor", lambda a, b, c: a ^ b, lambda m, x, y, z: m.apply_xor(x, y)),
        (
            "xnor",
            lambda a, b, c: not (a ^ c),
            lambda m, x, y, z: m.apply_xnor(x, z),
        ),
        (
            "nand",
            lambda a, b, c: not (a and b),
            lambda m, x, y, z: m.apply_nand(x, y),
        ),
        (
            "nor",
            lambda a, b, c: not (b or c),
            lambda m, x, y, z: m.apply_nor(y, z),
        ),
        (
            "mux",
            lambda a, b, c: b if a else c,
            lambda m, x, y, z: m.apply_mux(x, y, z),
        ),
        (
            "maj",
            lambda a, b, c: (a and b) or (a and c) or (b and c),
            lambda m, x, y, z: m.apply_or(
                m.apply_or(m.apply_and(x, y), m.apply_and(x, z)),
                m.apply_and(y, z),
            ),
        ),
    ]

    @pytest.mark.parametrize("name,py,build", FUNCS, ids=[f[0] for f in FUNCS])
    def test_exhaustive(self, mgr3, name, py, build):
        x, y, z = (mgr3.var(i) for i in range(3))
        f = build(mgr3, x, y, z)
        for a, b, c in itertools.product([False, True], repeat=3):
            assert mgr3.evaluate(f, {0: a, 1: b, 2: c}) == bool(py(a, b, c))


class TestRestrictQuantify:
    def test_restrict(self, mgr3):
        x, y = mgr3.var(0), mgr3.var(1)
        f = mgr3.apply_and(x, y)
        assert mgr3.restrict(f, 0, True) == y
        assert mgr3.restrict(f, 0, False) == FALSE

    def test_exists(self, mgr3):
        x, y = mgr3.var(0), mgr3.var(1)
        f = mgr3.apply_and(x, y)
        assert mgr3.exists(f, [0]) == y
        assert mgr3.exists(f, [0, 1]) == TRUE

    def test_forall(self, mgr3):
        x, y = mgr3.var(0), mgr3.var(1)
        f = mgr3.apply_or(x, y)
        assert mgr3.forall(f, [0]) == y
        assert mgr3.forall(f, [0, 1]) == FALSE

    def test_support(self, mgr3):
        x, z = mgr3.var(0), mgr3.var(2)
        f = mgr3.apply_xor(x, z)
        assert mgr3.support(f) == {0, 2}


class TestCounting:
    def test_simple_counts(self, mgr3):
        x, y = mgr3.var(0), mgr3.var(1)
        assert mgr3.count_models(mgr3.apply_and(x, y), [0, 1]) == 1
        assert mgr3.count_models(mgr3.apply_or(x, y), [0, 1]) == 3
        assert mgr3.count_models(mgr3.apply_xor(x, y), [0, 1]) == 2
        assert mgr3.count_models(TRUE, [0, 1, 2]) == 8
        assert mgr3.count_models(FALSE, [0, 1]) == 0

    def test_free_variables_double(self, mgr3):
        x = mgr3.var(0)
        assert mgr3.count_models(x, [0, 1, 2]) == 4

    def test_stray_support_rejected(self, mgr3):
        x, y = mgr3.var(0), mgr3.var(1)
        with pytest.raises(ValueError):
            mgr3.count_models(mgr3.apply_and(x, y), [0])

    @given(
        truth=st.integers(0, 255),
    )
    def test_count_matches_truth_table(self, truth):
        """Build an arbitrary 3-var function from its truth table via
        minterms; the model count must equal its popcount."""
        m = BddManager()
        for _ in range(3):
            m.new_var()
        f = FALSE
        for idx in range(8):
            if (truth >> idx) & 1:
                term = TRUE
                for j in range(3):
                    lit = m.var(j) if (idx >> j) & 1 else m.nvar(j)
                    term = m.apply_and(term, lit)
                f = m.apply_or(f, term)
        assert m.count_models(f, [0, 1, 2]) == bin(truth).count("1")
